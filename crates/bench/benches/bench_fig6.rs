//! Bench wrapper of the Figure 6 experiment: rendezvous progression
//! under both engines.

use pm2_bench::bench;
use pm2_mpi::workloads::{run_overlap, OverlapParams};
use pm2_mpi::ClusterConfig;
use pm2_newmad::EngineKind;
use std::hint::black_box;

fn main() {
    println!("fig6_rendezvous_progression");
    for size in [64 << 10, 256 << 10] {
        let p = OverlapParams {
            msg_len: size,
            compute: pm2_bench::fig6_compute(),
            iters: 8,
            warmup: 2,
        };
        for (name, engine) in [
            ("sequential", EngineKind::Sequential),
            ("pioman", EngineKind::Pioman),
        ] {
            bench(&format!("{name}/{size}"), 10, || {
                black_box(run_overlap(ClusterConfig::paper_testbed(engine), &p));
            });
        }
    }
}
