//! Criterion benches of the DES kernel: how fast the simulator itself
//! executes (host time per simulated event / task).

use criterion::{criterion_group, criterion_main, Criterion};
use pm2_sim::{Sim, SimDuration};
use std::hint::black_box;

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel");
    g.bench_function("schedule_and_run_1k_events", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            for i in 0..1_000u64 {
                sim.schedule_in(SimDuration::from_nanos(i), |_| {});
            }
            black_box(sim.run());
        })
    });
    g.bench_function("spawn_and_run_100_sleeping_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            for i in 0..100u64 {
                let sim2 = sim.clone();
                sim.spawn(async move {
                    for _ in 0..10 {
                        sim2.sleep(SimDuration::from_nanos(i + 1)).await;
                    }
                });
            }
            black_box(sim.run());
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_rng");
    g.bench_function("xoshiro_next_u64", |b| {
        let mut rng = pm2_sim::rng::Xoshiro256::new(7);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("xoshiro_gen_below", |b| {
        let mut rng = pm2_sim::rng::Xoshiro256::new(7);
        b.iter(|| black_box(rng.gen_below(1000)))
    });
    g.finish();
}

criterion_group!(benches, bench_events, bench_rng);
criterion_main!(benches);
