//! Benches of the DES kernel: how fast the simulator itself executes
//! (host time per simulated event / task).

use pm2_bench::bench;
use pm2_sim::{Sim, SimDuration};
use std::hint::black_box;

fn bench_events() {
    println!("sim_kernel");
    bench("schedule_and_run_1k_events", 500, || {
        let sim = Sim::new(1);
        for i in 0..1_000u64 {
            sim.schedule_in(SimDuration::from_nanos(i), |_| {});
        }
        black_box(sim.run());
    });
    bench("spawn_and_run_100_sleeping_tasks", 500, || {
        let sim = Sim::new(1);
        for i in 0..100u64 {
            let sim2 = sim.clone();
            sim.spawn(async move {
                for _ in 0..10 {
                    sim2.sleep(SimDuration::from_nanos(i + 1)).await;
                }
            });
        }
        black_box(sim.run());
    });
}

fn bench_rng() {
    println!("sim_rng");
    let mut rng = pm2_sim::rng::Xoshiro256::new(7);
    bench("xoshiro_next_u64", 1_000_000, || {
        black_box(rng.next_u64());
    });
    let mut rng = pm2_sim::rng::Xoshiro256::new(7);
    bench("xoshiro_gen_below", 1_000_000, || {
        black_box(rng.gen_below(1000));
    });
}

fn main() {
    bench_events();
    bench_rng();
}
