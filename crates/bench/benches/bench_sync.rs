//! Criterion benches of the native concurrency primitives (`pm2-sync`):
//! the "light primitives" of §2.1, measured on the host.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pm2_sync::{EventCount, MpmcQueue, MpscQueue, SpinLock, TaskletExecutor, TicketLock};
use std::hint::black_box;
use std::sync::Arc;

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks_uncontended");
    let spin = SpinLock::new(0u64);
    g.bench_function("spinlock", |b| {
        b.iter(|| {
            *spin.lock() += 1;
            black_box(());
        })
    });
    let ticket = TicketLock::new(0u64);
    g.bench_function("ticketlock", |b| {
        b.iter(|| {
            *ticket.lock() += 1;
            black_box(());
        })
    });
    let mutex = parking_lot::Mutex::new(0u64);
    g.bench_function("parking_lot_mutex", |b| {
        b.iter(|| {
            *mutex.lock() += 1;
            black_box(());
        })
    });
    let std_mutex = std::sync::Mutex::new(0u64);
    g.bench_function("std_mutex", |b| {
        b.iter(|| {
            *std_mutex.lock().unwrap() += 1;
            black_box(());
        })
    });
    g.finish();

    let mut g = c.benchmark_group("locks_contended_2threads");
    g.sample_size(10);
    g.bench_function("spinlock", |b| {
        b.iter_batched(
            || Arc::new(SpinLock::new(0u64)),
            |lock| {
                let l2 = Arc::clone(&lock);
                let t = std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        *l2.lock() += 1;
                    }
                });
                for _ in 0..5_000 {
                    *lock.lock() += 1;
                }
                t.join().unwrap();
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("parking_lot_mutex", |b| {
        b.iter_batched(
            || Arc::new(parking_lot::Mutex::new(0u64)),
            |lock| {
                let l2 = Arc::clone(&lock);
                let t = std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        *l2.lock() += 1;
                    }
                });
                for _ in 0..5_000 {
                    *lock.lock() += 1;
                }
                t.join().unwrap();
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    g.bench_function("mpsc_push_pop", |b| {
        let q = MpscQueue::new();
        b.iter(|| {
            q.push(black_box(1u64));
            black_box(q.pop());
        })
    });
    g.bench_function("mpmc_push_pop", |b| {
        let q = MpmcQueue::with_capacity(64);
        b.iter(|| {
            q.push(black_box(1u64)).unwrap();
            black_box(q.pop());
        })
    });
    g.finish();
}

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("events");
    g.bench_function("eventcount_signal", |b| {
        let ec = EventCount::new();
        b.iter(|| {
            ec.signal();
            black_box(ec.current());
        })
    });
    g.finish();
}

fn bench_tasklets(c: &mut Criterion) {
    let mut g = c.benchmark_group("tasklets");
    g.sample_size(10);
    g.bench_function("schedule_run_roundtrip", |b| {
        let exec = TaskletExecutor::new(1);
        let handle = exec.register(|| {});
        b.iter(|| {
            let before = handle.tasklet().run_count();
            handle.schedule();
            while handle.tasklet().run_count() == before {
                std::hint::spin_loop();
            }
        });
        exec.shutdown();
    });
    g.finish();
}

criterion_group!(benches, bench_locks, bench_queues, bench_events, bench_tasklets);
criterion_main!(benches);
