//! Benches of the native concurrency primitives (`pm2-sync`): the "light
//! primitives" of §2.1, measured on the host.

use pm2_bench::bench;
use pm2_sync::{EventCount, MpmcQueue, MpscQueue, SpinLock, TaskletExecutor, TicketLock};
use std::hint::black_box;
use std::sync::Arc;

fn bench_locks() {
    println!("locks_uncontended");
    let spin = SpinLock::new(0u64);
    bench("spinlock", 1_000_000, || {
        *spin.lock() += 1;
        black_box(());
    });
    let ticket = TicketLock::new(0u64);
    bench("ticketlock", 1_000_000, || {
        *ticket.lock() += 1;
        black_box(());
    });
    let std_mutex = std::sync::Mutex::new(0u64); // sync-allow: std baseline under comparison
    bench("std_mutex", 1_000_000, || {
        *std_mutex.lock().unwrap() += 1;
        black_box(());
    });

    println!("locks_contended_2threads");
    bench("spinlock", 20, || {
        let lock = Arc::new(SpinLock::new(0u64));
        let l2 = Arc::clone(&lock);
        let t = std::thread::spawn(move || {
            for _ in 0..5_000 {
                *l2.lock() += 1;
            }
        });
        for _ in 0..5_000 {
            *lock.lock() += 1;
        }
        t.join().unwrap();
    });
    bench("std_mutex", 20, || {
        let lock = Arc::new(std::sync::Mutex::new(0u64)); // sync-allow: std baseline under comparison
        let l2 = Arc::clone(&lock);
        let t = std::thread::spawn(move || {
            for _ in 0..5_000 {
                *l2.lock().unwrap() += 1;
            }
        });
        for _ in 0..5_000 {
            *lock.lock().unwrap() += 1;
        }
        t.join().unwrap();
    });
}

fn bench_queues() {
    println!("queues");
    let q = MpscQueue::new();
    bench("mpsc_push_pop", 1_000_000, || {
        q.push(black_box(1u64));
        black_box(q.pop());
    });
    let q = MpmcQueue::with_capacity(64);
    bench("mpmc_push_pop", 1_000_000, || {
        q.push(black_box(1u64)).unwrap();
        black_box(q.pop());
    });
}

fn bench_events() {
    println!("events");
    let ec = EventCount::new();
    bench("eventcount_signal", 1_000_000, || {
        ec.signal();
        black_box(ec.current());
    });
}

fn bench_tasklets() {
    println!("tasklets");
    let exec = TaskletExecutor::new(1);
    let handle = exec.register(|| {});
    bench("schedule_run_roundtrip", 10_000, || {
        let before = handle.tasklet().run_count();
        handle.schedule();
        while handle.tasklet().run_count() == before {
            std::hint::spin_loop();
        }
    });
    exec.shutdown();
}

fn main() {
    bench_locks();
    bench_queues();
    bench_events();
    bench_tasklets();
}
