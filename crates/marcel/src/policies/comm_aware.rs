//! The communication-aware policy: hierarchical queues plus a boost for
//! threads whose awaited request is near completion.
//!
//! The paper's core scheduling requirement is that "communicating threads
//! are ensured to be scheduled as soon as the communication event is
//! detected" (§3.2). The default policy implements that for *explicitly
//! urgent* wakeups; this policy additionally consults the request-state
//! signals ([`crate::CommSignals`]) that PIOMAN and NewMadeleine feed to
//! Marcel: a thread blocked on a request whose rendezvous handshake or
//! data transfer is already under way is promoted to
//! [`Priority::High`] and front-queued even when its waker did not mark
//! the wakeup urgent — its completion is imminent, and running it
//! promptly shortens the request's critical path.

use crate::comm::CommStage;
use crate::policy::{Dispatched, KickHint, PolicyCtx, ReadyEvent, SchedPolicy, ThreadView};
use crate::runq::{prio_idx, Placement, RunQueues};
use crate::thread::Priority;

/// Hierarchical queues + near-completion boost.
pub struct CommAwarePolicy {
    runq: RunQueues,
}

impl CommAwarePolicy {
    /// Policy for a node with `cores` cores over `sockets` sockets.
    pub fn new(cores: usize, sockets: usize) -> Self {
        CommAwarePolicy {
            runq: RunQueues::new(cores, sockets),
        }
    }

    /// True if `th` waits on a request whose completion is near: a
    /// rendezvous past its handshake, or a one-sided op being flushed
    /// (the flushing thread is on the RMA critical path either way).
    fn near_completion(ctx: &PolicyCtx<'_>, th: &ThreadView) -> bool {
        matches!(
            ctx.comm().wait_stage(th.id),
            Some(
                CommStage::Handshake
                    | CommStage::Transfer
                    | CommStage::RmaFlush
                    | CommStage::RmaDrain
            )
        )
    }
}

impl SchedPolicy for CommAwarePolicy {
    fn name(&self) -> &'static str {
        "comm"
    }

    fn on_wakeup(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, urgent: bool) -> Priority {
        if urgent || Self::near_completion(ctx, th) {
            Priority::High
        } else {
            th.priority
        }
    }

    fn enqueue(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent) {
        let (prio, placement) = match ev {
            ReadyEvent::Spawn => (
                th.priority,
                match th.affinity {
                    Some(c) => Placement::Core(c),
                    None => Placement::Node { front: false },
                },
            ),
            ReadyEvent::Yield { from_core } => (
                th.priority,
                match th.affinity {
                    Some(c) => Placement::Core(c),
                    None => Placement::Socket {
                        socket: self.runq.socket_of(from_core),
                        front: false,
                    },
                },
            ),
            ReadyEvent::Wakeup { urgent } => {
                let eff = self.on_wakeup(ctx, th, urgent);
                // Queue-jump whenever the effective priority was boosted,
                // not only on the waker's say-so.
                let front = eff > th.priority || urgent;
                (
                    eff,
                    match (th.affinity, th.last_core) {
                        (Some(c), _) => Placement::Core(c),
                        (None, Some(c)) => Placement::Socket {
                            socket: self.runq.socket_of(c),
                            front,
                        },
                        (None, None) => Placement::Node { front },
                    },
                )
            }
        };
        self.runq.push(th.id, prio_idx(prio), placement);
    }

    fn select_core(&mut self, _ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent) -> KickHint {
        match ev {
            ReadyEvent::Spawn => match th.affinity {
                Some(c) => KickHint::Core(c),
                None => KickHint::AnyIdle,
            },
            ReadyEvent::Yield { .. } => KickHint::None,
            ReadyEvent::Wakeup { .. } => match (th.affinity, th.last_core) {
                (Some(c), _) => KickHint::Core(c),
                (None, Some(c)) => KickHint::Near(c),
                (None, None) => KickHint::AnyIdle,
            },
        }
    }

    fn dispatch(&mut self, _ctx: &PolicyCtx<'_>, local_core: usize) -> Option<Dispatched> {
        self.runq
            .pop_for(local_core)
            .map(|(thread, source)| Dispatched { thread, source })
    }

    fn queued(&self) -> usize {
        self.runq.len()
    }
}
