//! The shipped [`crate::SchedPolicy`] implementations.

mod comm_aware;
mod fifo;
mod hier;
mod vruntime;

pub use comm_aware::CommAwarePolicy;
pub use fifo::FifoPolicy;
pub use hier::HierPolicy;
pub use vruntime::VruntimePolicy;
