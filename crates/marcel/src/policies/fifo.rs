//! The global-FIFO baseline policy: one node-wide queue, strictly in
//! arrival order.
//!
//! Deliberately naive — it ignores priority, urgency and cache locality
//! (only strict affinity is honored, because handing a pinned thread to
//! the wrong core would be incorrect rather than merely slow). It exists
//! as the comparison floor for the policy sweep: the gap between `fifo`
//! and `hier`/`comm` on the fig5/fig6 overlap workloads *is* the value of
//! priority- and locality-aware placement.

use crate::policy::{
    Dispatched, KickHint, PolicyCtx, PopSource, ReadyEvent, SchedPolicy, ThreadView,
};
use std::collections::VecDeque;

/// Single global FIFO (plus the mandatory strict-affinity queues).
pub struct FifoPolicy {
    core: Vec<VecDeque<crate::ThreadId>>,
    global: VecDeque<crate::ThreadId>,
}

impl FifoPolicy {
    /// Policy for a node with `cores` cores.
    pub fn new(cores: usize) -> Self {
        FifoPolicy {
            core: (0..cores).map(|_| VecDeque::new()).collect(),
            global: VecDeque::new(),
        }
    }
}

impl SchedPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&mut self, _ctx: &PolicyCtx<'_>, th: &ThreadView, _ev: ReadyEvent) {
        // Arrival order only: no priorities, no queue-jumping.
        match th.affinity {
            Some(c) => self.core[c].push_back(th.id),
            None => self.global.push_back(th.id),
        }
    }

    fn select_core(&mut self, _ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent) -> KickHint {
        match ev {
            ReadyEvent::Yield { .. } => KickHint::None,
            _ => match th.affinity {
                Some(c) => KickHint::Core(c),
                None => KickHint::AnyIdle,
            },
        }
    }

    fn dispatch(&mut self, _ctx: &PolicyCtx<'_>, local_core: usize) -> Option<Dispatched> {
        if let Some(thread) = self.core[local_core].pop_front() {
            return Some(Dispatched {
                thread,
                source: PopSource::Core,
            });
        }
        self.global.pop_front().map(|thread| Dispatched {
            thread,
            source: PopSource::Node,
        })
    }

    fn queued(&self) -> usize {
        self.core.iter().map(VecDeque::len).sum::<usize>() + self.global.len()
    }
}
