//! A CFS-style virtual-runtime fairness policy.
//!
//! Every thread accumulates *vruntime* while it occupies a core, scaled
//! inversely by its priority weight (high-priority threads are charged
//! less per real nanosecond, so they get a proportionally larger CPU
//! share). Dispatch always picks the smallest vruntime among eligible
//! threads, and fresh arrivals start at the current floor so they can
//! neither starve nor monopolize.
//!
//! Locality is deliberately ignored (beyond strict affinity): this policy
//! isolates the *fairness* axis of the design space, the way `fifo`
//! isolates the arrival-order axis.

use crate::policy::{
    Dispatched, KickHint, PolicyCtx, PopSource, ReadyEvent, SchedPolicy, StopKind, ThreadView,
};
use crate::thread::{Priority, ThreadId};
use pm2_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Charge multiplier per priority: a Low thread's nanosecond costs 4×
/// what a High thread's does, giving High a 4× larger fair share.
fn charge_factor(p: Priority) -> u64 {
    match p {
        Priority::Low => 4,
        Priority::Normal => 2,
        Priority::High => 1,
    }
}

/// Priority-weighted vruntime-fair policy.
pub struct VruntimePolicy {
    /// Node-wide ready set, ordered by (vruntime, thread id).
    queue: BTreeSet<(u64, ThreadId)>,
    /// Strict-affinity ready sets, same order.
    core_queue: Vec<BTreeSet<(u64, ThreadId)>>,
    /// Accumulated vruntime per live thread.
    vt: BTreeMap<ThreadId, u64>,
    /// Dispatch timestamps of currently running threads.
    running: BTreeMap<ThreadId, SimTime>,
    /// Monotone floor: fresh or long-blocked threads re-enter here.
    min_vt: u64,
}

impl VruntimePolicy {
    /// Policy for a node with `cores` cores.
    pub fn new(cores: usize) -> Self {
        VruntimePolicy {
            queue: BTreeSet::new(),
            core_queue: (0..cores).map(|_| BTreeSet::new()).collect(),
            vt: BTreeMap::new(),
            running: BTreeMap::new(),
            min_vt: 0,
        }
    }

    fn take(&mut self, entry: (u64, ThreadId), source: PopSource) -> Dispatched {
        self.min_vt = self.min_vt.max(entry.0);
        Dispatched {
            thread: entry.1,
            source,
        }
    }
}

impl SchedPolicy for VruntimePolicy {
    fn name(&self) -> &'static str {
        "vruntime"
    }

    fn enqueue(&mut self, _ctx: &PolicyCtx<'_>, th: &ThreadView, _ev: ReadyEvent) {
        // Re-entry at the floor: a thread that slept through several
        // scheduling epochs must not come back with an ancient (tiny)
        // vruntime and lock everyone else out.
        let vt = self.vt.entry(th.id).or_insert(self.min_vt);
        *vt = (*vt).max(self.min_vt);
        let entry = (*vt, th.id);
        match th.affinity {
            Some(c) => self.core_queue[c].insert(entry),
            None => self.queue.insert(entry),
        };
    }

    fn select_core(&mut self, _ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent) -> KickHint {
        match ev {
            ReadyEvent::Yield { .. } => KickHint::None,
            _ => match th.affinity {
                Some(c) => KickHint::Core(c),
                None => KickHint::AnyIdle,
            },
        }
    }

    fn dispatch(&mut self, ctx: &PolicyCtx<'_>, local_core: usize) -> Option<Dispatched> {
        let pinned = self.core_queue[local_core].first().copied();
        let global = self.queue.first().copied();
        let d = match (pinned, global) {
            (Some(p), Some(g)) => {
                // Smallest vruntime wins; the pinned thread breaks ties
                // (it has nowhere else to go).
                if p <= g {
                    self.core_queue[local_core].remove(&p);
                    self.take(p, PopSource::Core)
                } else {
                    self.queue.remove(&g);
                    self.take(g, PopSource::Node)
                }
            }
            (Some(p), None) => {
                self.core_queue[local_core].remove(&p);
                self.take(p, PopSource::Core)
            }
            (None, Some(g)) => {
                self.queue.remove(&g);
                self.take(g, PopSource::Node)
            }
            (None, None) => return None,
        };
        self.running.insert(d.thread, ctx.now());
        Some(d)
    }

    fn stopping(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, reason: StopKind) {
        if let Some(start) = self.running.remove(&th.id) {
            let ran = ctx.now().saturating_since(start).as_nanos();
            let charged = ran.saturating_mul(charge_factor(th.priority));
            *self.vt.entry(th.id).or_insert(self.min_vt) += charged;
        }
        if reason == StopKind::Finish {
            self.vt.remove(&th.id);
        }
    }

    fn queued(&self) -> usize {
        self.queue.len() + self.core_queue.iter().map(BTreeSet::len).sum::<usize>()
    }
}
