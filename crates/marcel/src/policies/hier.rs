//! The default hierarchical policy: the paper-faithful behavior of the
//! pre-trait scheduler, verbatim.
//!
//! Placement and kick decisions reproduce the original engine bit for
//! bit — the zero-fault figure baselines are byte-diffed against this
//! policy in CI, so any change here is a behavior change by definition:
//!
//! * spawn: strict core if pinned, else the node queue; kick the pinned
//!   core or any idle one;
//! * yield: back of the socket it just ran on (cache-warm), no extra kick
//!   (the freed core re-scans anyway);
//! * wakeup: urgent wakeups rise to [`crate::Priority::High`] and jump their
//!   socket/node queue; kick the pinned core, else the idle core nearest
//!   to where the thread last ran.

use crate::policy::{Dispatched, KickHint, PolicyCtx, ReadyEvent, SchedPolicy, ThreadView};
use crate::runq::{prio_idx, Placement, RunQueues};

/// The default two-level (core/socket/node × priority) policy.
pub struct HierPolicy {
    runq: RunQueues,
}

impl HierPolicy {
    /// Policy for a node with `cores` cores over `sockets` sockets.
    pub fn new(cores: usize, sockets: usize) -> Self {
        HierPolicy {
            runq: RunQueues::new(cores, sockets),
        }
    }
}

impl SchedPolicy for HierPolicy {
    fn name(&self) -> &'static str {
        "hier"
    }

    fn enqueue(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent) {
        let (prio, placement) = match ev {
            ReadyEvent::Spawn => (
                th.priority,
                match th.affinity {
                    Some(c) => Placement::Core(c),
                    None => Placement::Node { front: false },
                },
            ),
            ReadyEvent::Yield { from_core } => (
                th.priority,
                match th.affinity {
                    Some(c) => Placement::Core(c),
                    // A yielding thread is cache-warm: prefer its socket.
                    None => Placement::Socket {
                        socket: self.runq.socket_of(from_core),
                        front: false,
                    },
                },
            ),
            ReadyEvent::Wakeup { urgent } => (
                self.on_wakeup(ctx, th, urgent),
                match (th.affinity, th.last_core) {
                    (Some(c), _) => Placement::Core(c),
                    (None, Some(c)) => Placement::Socket {
                        socket: self.runq.socket_of(c),
                        front: urgent,
                    },
                    (None, None) => Placement::Node { front: urgent },
                },
            ),
        };
        self.runq.push(th.id, prio_idx(prio), placement);
    }

    fn select_core(&mut self, _ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent) -> KickHint {
        match ev {
            ReadyEvent::Spawn => match th.affinity {
                Some(c) => KickHint::Core(c),
                None => KickHint::AnyIdle,
            },
            ReadyEvent::Yield { .. } => KickHint::None,
            ReadyEvent::Wakeup { .. } => match (th.affinity, th.last_core) {
                (Some(c), _) => KickHint::Core(c),
                (None, Some(c)) => KickHint::Near(c),
                (None, None) => KickHint::AnyIdle,
            },
        }
    }

    fn dispatch(&mut self, _ctx: &PolicyCtx<'_>, local_core: usize) -> Option<Dispatched> {
        self.runq
            .pop_for(local_core)
            .map(|(thread, source)| Dispatched { thread, source })
    }

    fn queued(&self) -> usize {
        self.runq.len()
    }
}
