//! Request-state signals feeding communication-aware scheduling policies.
//!
//! The progression engine (PIOMAN) and the communication library
//! (NewMadeleine) report two things to Marcel as they drive requests:
//! which thread is blocked waiting on which request, and how far along
//! each request is ([`CommStage`]). Policies read the table through
//! [`crate::PolicyCtx::comm`] — e.g. the comm-aware policy boosts a
//! thread whose awaited request has reached its data transfer, because
//! that thread will become runnable-and-urgent very soon (§3.2: woken
//! communicating threads must run "as soon as the communication event is
//! detected").
//!
//! Recording a signal never schedules anything by itself: the default
//! policy ignores the table entirely, which keeps its behavior identical
//! to the pre-trait scheduler.

use crate::sched::Marcel;
use crate::thread::ThreadId;
use std::collections::BTreeMap;

/// How far along a tracked communication request is (monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommStage {
    /// Submitted; no peer interaction observed yet.
    Posted,
    /// Rendezvous handshake under way (RTS matched / CTS sent).
    Handshake,
    /// Payload moving (DMA chunks queued or arriving): completion is near.
    Transfer,
}

/// Bound on tracked requests: ids are monotonic, so when the table
/// overflows the *oldest* requests (long completed or abandoned) are
/// evicted first.
const MAX_TRACKED_REQS: usize = 1024;

/// Bounded table of request stages and per-thread waits.
#[derive(Debug, Default)]
pub struct CommSignals {
    /// Request id → furthest observed stage.
    stages: BTreeMap<u64, CommStage>,
    /// Thread → request id it is currently blocked on.
    waits: BTreeMap<ThreadId, u64>,
}

impl CommSignals {
    /// Stage of the request `thread` is blocked on, if it is waiting on a
    /// tracked request.
    pub fn wait_stage(&self, thread: ThreadId) -> Option<CommStage> {
        self.waits
            .get(&thread)
            .and_then(|req| self.stages.get(req))
            .copied()
    }

    /// True if `thread` is currently blocked inside a communication wait.
    pub fn is_waiting(&self, thread: ThreadId) -> bool {
        self.waits.contains_key(&thread)
    }

    /// Furthest observed stage of request `req`.
    pub fn stage(&self, req: u64) -> Option<CommStage> {
        self.stages.get(&req).copied()
    }

    /// Number of requests currently tracked.
    pub fn tracked(&self) -> usize {
        self.stages.len()
    }

    fn cap(&mut self) {
        while self.stages.len() > MAX_TRACKED_REQS {
            self.stages.pop_first();
        }
    }

    pub(crate) fn note_stage(&mut self, req: u64, stage: CommStage) {
        let e = self.stages.entry(req).or_insert(stage);
        if stage > *e {
            *e = stage;
        }
        self.cap();
    }

    pub(crate) fn done(&mut self, req: u64) {
        self.stages.remove(&req);
    }

    pub(crate) fn wait_begin(&mut self, thread: ThreadId, req: u64) {
        self.waits.insert(thread, req);
        self.stages.entry(req).or_insert(CommStage::Posted);
        self.cap();
    }

    pub(crate) fn wait_end(&mut self, thread: ThreadId) {
        self.waits.remove(&thread);
    }
}

impl Marcel {
    /// Notes that `thread` is about to block waiting for request `req`
    /// (called by the progression engine right before releasing the core).
    pub fn comm_wait_begin(&self, thread: ThreadId, req: u64) {
        self.inner.state.borrow_mut().comm.wait_begin(thread, req);
    }

    /// Clears the wait note left by [`Marcel::comm_wait_begin`].
    pub fn comm_wait_end(&self, thread: ThreadId) {
        self.inner.state.borrow_mut().comm.wait_end(thread);
    }

    /// Records progress of request `req`; stages only move forward.
    pub fn note_req_stage(&self, req: u64, stage: CommStage) {
        self.inner.state.borrow_mut().comm.note_stage(req, stage);
    }

    /// Drops request `req` from the signal table (completed or abandoned).
    pub fn note_req_done(&self, req: u64) {
        self.inner.state.borrow_mut().comm.done(req);
    }

    /// Stage of the request `thread` is blocked on, if any (observability
    /// and test helper; policies read this through their context instead).
    pub fn comm_wait_stage(&self, thread: ThreadId) -> Option<CommStage> {
        self.inner.state.borrow().comm.wait_stage(thread)
    }

    /// Furthest observed stage of request `req`, if tracked.
    pub fn comm_req_stage(&self, req: u64) -> Option<CommStage> {
        self.inner.state.borrow().comm.stage(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_monotone() {
        let mut c = CommSignals::default();
        c.note_stage(7, CommStage::Transfer);
        c.note_stage(7, CommStage::Posted); // late, lower: ignored
        assert_eq!(c.stage(7), Some(CommStage::Transfer));
        c.done(7);
        assert_eq!(c.stage(7), None);
    }

    #[test]
    fn wait_links_thread_to_request() {
        let mut c = CommSignals::default();
        let t = ThreadId(3);
        c.wait_begin(t, 9);
        assert_eq!(c.wait_stage(t), Some(CommStage::Posted));
        c.note_stage(9, CommStage::Handshake);
        assert_eq!(c.wait_stage(t), Some(CommStage::Handshake));
        c.wait_end(t);
        assert!(!c.is_waiting(t));
    }

    #[test]
    fn table_is_bounded_evicting_oldest() {
        let mut c = CommSignals::default();
        for req in 0..2_000u64 {
            c.note_stage(req, CommStage::Posted);
        }
        assert_eq!(c.tracked(), MAX_TRACKED_REQS);
        assert_eq!(c.stage(0), None, "oldest evicted");
        assert!(c.stage(1_999).is_some(), "newest kept");
    }
}
