//! Request-state signals feeding communication-aware scheduling policies.
//!
//! The progression engine (PIOMAN) and the communication library
//! (NewMadeleine) report two things to Marcel as they drive requests:
//! which thread is blocked waiting on which request, and how far along
//! each request is ([`CommStage`]). Policies read the table through
//! [`crate::PolicyCtx::comm`] — e.g. the comm-aware policy boosts a
//! thread whose awaited request has reached its data transfer, because
//! that thread will become runnable-and-urgent very soon (§3.2: woken
//! communicating threads must run "as soon as the communication event is
//! detected").
//!
//! Recording a signal never schedules anything by itself: the default
//! policy ignores the table entirely, which keeps its behavior identical
//! to the pre-trait scheduler.

use crate::sched::Marcel;
use crate::thread::ThreadId;
use std::collections::BTreeMap;

/// How far along a tracked communication request is (monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommStage {
    /// Submitted; no peer interaction observed yet.
    Posted,
    /// Rendezvous handshake under way (RTS matched / CTS sent).
    Handshake,
    /// Payload moving (DMA chunks queued or arriving): completion is near.
    Transfer,
    /// A one-sided (RMA) operation the thread is flushing: the flush has
    /// begun but the op is still queued on its injection endpoint.
    RmaFlush,
    /// The flushed RMA op has drained onto the wire; only the remote
    /// apply + ack remain, so completion is imminent.
    RmaDrain,
}

/// Bound on tracked requests: ids are monotonic, so when the table
/// overflows the *oldest* requests (long completed or abandoned) are
/// evicted first.
pub const MAX_TRACKED_REQS: usize = 1024;

/// Bounded table of request stages and per-thread waits.
#[derive(Debug, Default)]
pub struct CommSignals {
    /// Request id → furthest observed stage.
    stages: BTreeMap<u64, CommStage>,
    /// Thread → request id it is currently blocked on.
    waits: BTreeMap<ThreadId, u64>,
}

impl CommSignals {
    /// Stage of the request `thread` is blocked on, if it is waiting on a
    /// tracked request.
    pub fn wait_stage(&self, thread: ThreadId) -> Option<CommStage> {
        self.waits
            .get(&thread)
            .and_then(|req| self.stages.get(req))
            .copied()
    }

    /// True if `thread` is currently blocked inside a communication wait.
    pub fn is_waiting(&self, thread: ThreadId) -> bool {
        self.waits.contains_key(&thread)
    }

    /// Furthest observed stage of request `req`.
    pub fn stage(&self, req: u64) -> Option<CommStage> {
        self.stages.get(&req).copied()
    }

    /// Number of requests currently tracked.
    pub fn tracked(&self) -> usize {
        self.stages.len()
    }

    /// Number of threads currently inside a `wait_begin`/`wait_end`
    /// bracket. A quiesced scheduler must report zero — every wait
    /// entered was left.
    pub fn waiting(&self) -> usize {
        self.waits.len()
    }

    fn cap(&mut self) {
        while self.stages.len() > MAX_TRACKED_REQS {
            self.stages.pop_first();
        }
    }

    pub(crate) fn note_stage(&mut self, req: u64, stage: CommStage) {
        let e = self.stages.entry(req).or_insert(stage);
        if stage > *e {
            *e = stage;
        }
        self.cap();
    }

    pub(crate) fn done(&mut self, req: u64) {
        self.stages.remove(&req);
    }

    pub(crate) fn wait_begin(&mut self, thread: ThreadId, req: u64) {
        self.waits.insert(thread, req);
        self.stages.entry(req).or_insert(CommStage::Posted);
        self.cap();
    }

    pub(crate) fn wait_end(&mut self, thread: ThreadId) {
        self.waits.remove(&thread);
    }
}

impl Marcel {
    /// Notes that `thread` is about to block waiting for request `req`
    /// (called by the progression engine right before releasing the core).
    pub fn comm_wait_begin(&self, thread: ThreadId, req: u64) {
        self.inner.state.borrow_mut().comm.wait_begin(thread, req);
    }

    /// Clears the wait note left by [`Marcel::comm_wait_begin`].
    pub fn comm_wait_end(&self, thread: ThreadId) {
        self.inner.state.borrow_mut().comm.wait_end(thread);
    }

    /// Records progress of request `req`; stages only move forward.
    pub fn note_req_stage(&self, req: u64, stage: CommStage) {
        self.inner.state.borrow_mut().comm.note_stage(req, stage);
    }

    /// Drops request `req` from the signal table (completed or abandoned).
    pub fn note_req_done(&self, req: u64) {
        self.inner.state.borrow_mut().comm.done(req);
    }

    /// Stage of the request `thread` is blocked on, if any (observability
    /// and test helper; policies read this through their context instead).
    pub fn comm_wait_stage(&self, thread: ThreadId) -> Option<CommStage> {
        self.inner.state.borrow().comm.wait_stage(thread)
    }

    /// Furthest observed stage of request `req`, if tracked.
    pub fn comm_req_stage(&self, req: u64) -> Option<CommStage> {
        self.inner.state.borrow().comm.stage(req)
    }

    /// Requests currently tracked by the signal table (bounded by
    /// [`MAX_TRACKED_REQS`]).
    pub fn comm_tracked(&self) -> usize {
        self.inner.state.borrow().comm.tracked()
    }

    /// Threads currently inside a `comm_wait_begin`/`comm_wait_end`
    /// bracket. Zero once the simulation has quiesced — the scenario
    /// suite asserts this under thousands of concurrent streams.
    pub fn comm_waiting(&self) -> usize {
        self.inner.state.borrow().comm.waiting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_monotone() {
        let mut c = CommSignals::default();
        c.note_stage(7, CommStage::Transfer);
        c.note_stage(7, CommStage::Posted); // late, lower: ignored
        assert_eq!(c.stage(7), Some(CommStage::Transfer));
        c.done(7);
        assert_eq!(c.stage(7), None);
    }

    #[test]
    fn rma_stages_rank_above_transfer_and_stay_monotone() {
        assert!(CommStage::RmaFlush > CommStage::Transfer);
        assert!(CommStage::RmaDrain > CommStage::RmaFlush);
        let mut c = CommSignals::default();
        c.note_stage(3, CommStage::RmaDrain);
        c.note_stage(3, CommStage::RmaFlush); // late, lower: ignored
        assert_eq!(c.stage(3), Some(CommStage::RmaDrain));
    }

    #[test]
    fn wait_links_thread_to_request() {
        let mut c = CommSignals::default();
        let t = ThreadId(3);
        c.wait_begin(t, 9);
        assert_eq!(c.wait_stage(t), Some(CommStage::Posted));
        c.note_stage(9, CommStage::Handshake);
        assert_eq!(c.wait_stage(t), Some(CommStage::Handshake));
        c.wait_end(t);
        assert!(!c.is_waiting(t));
    }

    #[test]
    fn table_is_bounded_evicting_oldest() {
        let mut c = CommSignals::default();
        for req in 0..2_000u64 {
            c.note_stage(req, CommStage::Posted);
        }
        assert_eq!(c.tracked(), MAX_TRACKED_REQS);
        assert_eq!(c.stage(0), None, "oldest evicted");
        assert!(c.stage(1_999).is_some(), "newest kept");
    }

    /// Randomized bracket-balance property: a driver that always pairs
    /// `wait_begin` with `wait_end` (whatever stage notes, completions
    /// and evictions happen in between) leaves the wait table empty, and
    /// the stage table never exceeds its cap at any step.
    #[test]
    fn random_bracket_sequences_balance_and_stay_bounded() {
        use pm2_sim::rng::Xoshiro256;
        for seed in [1u64, 7, 42, 1234] {
            let mut rng = Xoshiro256::new(seed);
            let mut c = CommSignals::default();
            let mut open: Vec<(ThreadId, u64)> = Vec::new();
            let mut next_req = 0u64;
            for step in 0..20_000u64 {
                match rng.gen_below(4) {
                    // Open a wait bracket on a fresh thread/request.
                    0 => {
                        let t = ThreadId(10_000 + open.len() + (step as usize % 97));
                        if open.iter().all(|(ot, _)| *ot != t) {
                            c.wait_begin(t, next_req);
                            open.push((t, next_req));
                            next_req += 1;
                        }
                    }
                    // Close the oldest open bracket.
                    1 => {
                        if !open.is_empty() {
                            let (t, _) = open.remove(0);
                            c.wait_end(t);
                        }
                    }
                    // Progress a random tracked request (two-sided or RMA).
                    2 => {
                        let stage = match rng.gen_below(5) {
                            0 => CommStage::Posted,
                            1 => CommStage::Handshake,
                            2 => CommStage::Transfer,
                            3 => CommStage::RmaFlush,
                            _ => CommStage::RmaDrain,
                        };
                        c.note_stage(rng.gen_below(next_req.max(1)), stage);
                    }
                    // Complete a random request.
                    _ => {
                        c.done(rng.gen_below(next_req.max(1)));
                    }
                }
                assert!(
                    c.tracked() <= MAX_TRACKED_REQS,
                    "seed {seed}: table grew past the cap at step {step}"
                );
                assert_eq!(c.waiting(), open.len(), "seed {seed}: bracket imbalance");
            }
            for (t, _) in open.drain(..) {
                c.wait_end(t);
            }
            assert_eq!(c.waiting(), 0, "seed {seed}: waits leaked");
        }
    }
}
