//! Marcel: a two-level thread scheduler over simulated cores.
//!
//! This crate reproduces the role Marcel plays in the PM2 suite (§3.1 of
//! the paper): it owns the cores of one node, schedules application
//! threads onto them, and provides the three mechanisms PIOMAN builds on:
//!
//! * **Tasklets** — high-priority deferred work with Linux semantics
//!   (coalesced scheduling, never concurrent with itself). Tasklets always
//!   run before ordinary threads when a core looks for work, matching
//!   "tasklets have a very high priority … executed as soon as the
//!   scheduler reaches a point where it is safe to let them run".
//! * **Idle hooks** — callbacks invoked whenever a core has nothing to run,
//!   so PIOMAN can "fill the gap left by the thread scheduler" with
//!   communication progress (§4.3).
//! * **Triggers** — periodic timers and explicit kicks, the other two
//!   occasions on which Marcel schedules PIOMAN ("CPU idleness, context
//!   switches, timer interrupts").
//!
//! Application threads are `async` state machines driven by the `pm2-sim`
//! executor; [`ThreadCtx::compute`] charges virtual CPU time to the core
//! the thread runs on, and [`ThreadCtx::park`]/[`Marcel::unpark`] implement
//! blocking and wake-up. When a thread blocks, the freed core immediately
//! looks for tasklets and idle work — this is exactly the mechanism that
//! lets the engine overlap communication with computation.
//!
//! **Scheduling is pluggable**: the engine (cores, tasklets, hooks,
//! timers) is fixed, while thread placement and dispatch order are
//! delegated to a [`SchedPolicy`] selected via [`MarcelConfig::policy`]
//! (see [`SchedPolicyKind`] for the shipped ones). The default
//! hierarchical policy reproduces the paper's behavior exactly; the
//! communication-aware one additionally consumes the request-progress
//! signals ([`CommSignals`]) that PIOMAN and NewMadeleine publish.

#![warn(missing_docs)]

mod comm;
mod config;
pub mod policies;
mod policy;
mod runq;
mod sched;
mod tasklet;
mod thread;

pub use comm::{CommSignals, CommStage, MAX_TRACKED_REQS};
pub use config::MarcelConfig;
pub use policy::{
    Dispatched, KickHint, PolicyCtx, PopSource, ReadyEvent, SchedPolicy, SchedPolicyKind, StopKind,
    ThreadView,
};
pub use sched::{HookResult, Marcel, SchedStats, TimerId};
pub use tasklet::{TaskletId, TaskletRun};
pub use thread::{Priority, ThreadCtx, ThreadId};
