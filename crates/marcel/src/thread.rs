//! Thread identity and the context handed to simulated threads.

use crate::sched::Marcel;
use pm2_sim::{SimDuration, Trigger};
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Scheduling priority of a Marcel thread.
///
/// Tasklets implicitly outrank all three levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work; runs only when nothing else is ready.
    Low,
    /// Default application priority.
    Normal,
    /// Woken communicating threads ("scheduled as soon as the event is
    /// detected", §3.2).
    High,
}

/// Identifier of a Marcel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) usize);

impl ThreadId {
    /// Raw index, for diagnostics.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle a thread body uses to interact with the scheduler.
///
/// Cloneable; all methods are `async` and must be awaited from the thread's
/// own body (awaiting them from another thread's body is a logic error and
/// panics in debug assertions).
#[derive(Clone)]
pub struct ThreadCtx {
    pub(crate) marcel: Marcel,
    pub(crate) id: ThreadId,
}

impl ThreadCtx {
    /// This thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The scheduler this thread belongs to.
    pub fn marcel(&self) -> &Marcel {
        &self.marcel
    }

    /// Burns `d` of CPU time on the current core.
    ///
    /// If the scheduler is configured with
    /// [`crate::MarcelConfig::timer_steals_from_compute`], pending tasklets
    /// may steal cycles at timer-tick boundaries, extending the wall time
    /// of the computation accordingly.
    pub async fn compute(&self, d: SimDuration) {
        let sim = self.marcel.sim().clone();
        let steal_cfg = self.marcel.compute_steal_config();
        match steal_cfg {
            Some(tick) => {
                let mut remaining = d;
                while !remaining.is_zero() {
                    let slice = remaining.min(tick);
                    sim.sleep(slice).await;
                    remaining = remaining.saturating_sub(slice);
                    if !remaining.is_zero() {
                        // Tick boundary: let at most one pending tasklet
                        // steal this core.
                        let stolen = self.marcel.steal_one_tasklet(self.id);
                        if !stolen.is_zero() {
                            sim.sleep(stolen).await;
                        }
                    }
                }
            }
            None => sim.sleep(d).await,
        }
    }

    /// Releases the core and waits until `trigger` fires, then re-enters
    /// the run queue (at [`Priority::High`] if `urgent`) and resumes once
    /// dispatched.
    ///
    /// Returns immediately (without releasing the core) if the trigger has
    /// already fired — the check-then-block sequence is atomic because the
    /// simulator is event-driven.
    pub async fn block_until(&self, trigger: &Trigger, urgent: bool) {
        if trigger.is_fired() {
            return;
        }
        self.marcel.release_blocked(self.id);
        trigger.wait().await;
        self.marcel.make_ready(self.id, urgent);
        WaitDispatched {
            marcel: self.marcel.clone(),
            id: self.id,
        }
        .await;
    }

    /// Releases the core and parks until [`Marcel::unpark`].
    ///
    /// A pending unpark "permit" (an unpark that arrived while the thread
    /// was still running) makes the next `park` return immediately.
    pub async fn park(&self) {
        let Some(trigger) = self.marcel.begin_park(self.id) else {
            return; // permit consumed
        };
        self.marcel.release_blocked(self.id);
        trigger.wait().await;
        self.marcel.make_ready(self.id, true);
        WaitDispatched {
            marcel: self.marcel.clone(),
            id: self.id,
        }
        .await;
    }

    /// Sleeps for `d` of virtual time **releasing the core** — unlike
    /// [`ThreadCtx::compute`], which keeps the core busy. Other threads,
    /// tasklets and idle hooks run on it meanwhile.
    pub async fn sleep(&self, d: SimDuration) {
        let trig = Trigger::new();
        let t = trig.clone();
        self.marcel.sim().schedule_in(d, move |_| t.fire());
        self.block_until(&trig, false).await;
    }

    /// Blocks until `thread` finishes (releasing the core meanwhile).
    pub async fn join(&self, thread: ThreadId) {
        let fin = self.marcel.finished(thread);
        self.block_until(&fin, false).await;
    }

    /// Cooperatively yields the core to other ready work.
    pub async fn yield_now(&self) {
        self.marcel.release_ready(self.id);
        WaitDispatched {
            marcel: self.marcel.clone(),
            id: self.id,
        }
        .await;
    }

    /// The core this thread currently occupies (None while blocked/ready).
    pub fn current_core(&self) -> Option<pm2_topo::CoreId> {
        self.marcel.core_of(self.id)
    }
}

/// Future that resolves once the scheduler has dispatched the thread onto
/// a core again.
pub(crate) struct WaitDispatched {
    pub(crate) marcel: Marcel,
    pub(crate) id: ThreadId,
}

impl Future for WaitDispatched {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.marcel.is_running(self.id) {
            Poll::Ready(())
        } else {
            self.marcel.set_dispatch_waker(self.id, cx.waker().clone());
            Poll::Pending
        }
    }
}
