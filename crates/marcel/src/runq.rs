//! Hierarchical run queues: core / socket / node levels.
//!
//! Marcel "was carefully designed to … efficiently exploit hierarchical
//! architectures" (§3.1). Ready threads are queued at the level matching
//! what is known about their cache footprint:
//!
//! * **core** — strict affinity only; no other core may pop these;
//! * **socket** — preference: woken communicating threads return to the
//!   socket they last ran on (warm shared cache), but cores of other
//!   sockets may *steal* them rather than idle;
//! * **node** — anywhere (fresh spawns, migrating threads).
//!
//! [`RunQueues::pop_for`] scans priorities from high to low, and within
//! one priority walks own core → own socket → node → other sockets
//! (steal). Two invariants follow, and are asserted directly by the tests
//! below (including randomized ones):
//!
//! * **Priority dominates locality.** The priority loop is outermost, so
//!   a high-priority thread queued on a *remote* socket is picked before
//!   a normal-priority thread in the local one — urgent wakeups
//!   ("communicating threads are ensured to be scheduled as soon as the
//!   communication event is detected", §3.2) are never delayed for cache
//!   reasons. Within one priority, nearer levels win, and the node queue
//!   is drained before any cross-socket steal.
//! * **Urgent wakeups jump their queue.** `front: true` inserts at the
//!   head of the socket or node queue. The strict core level has no
//!   `front` flag: a pinned thread's queue order is its arrival order
//!   (its urgency is already expressed by the priority index).

use crate::policy::PopSource;
use crate::thread::{Priority, ThreadId};
use std::collections::VecDeque;

const PRIOS: usize = 3;

/// Queue index of a priority (higher index pops first).
pub(crate) fn prio_idx(p: Priority) -> usize {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

/// Where to enqueue a ready thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Placement {
    /// Strict: only this local core may run the thread.
    Core(usize),
    /// Preferred socket; `front` jumps the queue (urgent wakeups).
    Socket {
        /// Local socket index.
        socket: usize,
        /// Queue-jump for urgent wakeups.
        front: bool,
    },
    /// Anywhere on the node.
    Node {
        /// Queue-jump for urgent wakeups.
        front: bool,
    },
}

pub(crate) struct RunQueues {
    core: Vec<[VecDeque<ThreadId>; PRIOS]>,
    socket: Vec<[VecDeque<ThreadId>; PRIOS]>,
    node: [VecDeque<ThreadId>; PRIOS],
    cores_per_socket: usize,
}

fn empty_prios() -> [VecDeque<ThreadId>; PRIOS] {
    [VecDeque::new(), VecDeque::new(), VecDeque::new()]
}

impl RunQueues {
    pub(crate) fn new(cores: usize, sockets: usize) -> Self {
        assert!(sockets > 0 && cores % sockets == 0);
        RunQueues {
            core: (0..cores).map(|_| empty_prios()).collect(),
            socket: (0..sockets).map(|_| empty_prios()).collect(),
            node: empty_prios(),
            cores_per_socket: cores / sockets,
        }
    }

    /// Socket of a local core index.
    pub(crate) fn socket_of(&self, local_core: usize) -> usize {
        local_core / self.cores_per_socket
    }

    pub(crate) fn push(&mut self, tid: ThreadId, prio: usize, placement: Placement) {
        match placement {
            Placement::Core(c) => self.core[c][prio].push_back(tid),
            Placement::Socket { socket, front } => {
                if front {
                    self.socket[socket][prio].push_front(tid);
                } else {
                    self.socket[socket][prio].push_back(tid);
                }
            }
            Placement::Node { front } => {
                if front {
                    self.node[prio].push_front(tid);
                } else {
                    self.node[prio].push_back(tid);
                }
            }
        }
    }

    /// Total queued threads.
    pub(crate) fn len(&self) -> usize {
        let per: usize = self
            .core
            .iter()
            .chain(self.socket.iter())
            .map(|qs| qs.iter().map(VecDeque::len).sum::<usize>())
            .sum();
        per + self.node.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Pops the best thread for `local_core`: highest priority first, then
    /// nearest level; remote-socket stealing beats idling.
    pub(crate) fn pop_for(&mut self, local_core: usize) -> Option<(ThreadId, PopSource)> {
        let my_socket = self.socket_of(local_core);
        for prio in (0..PRIOS).rev() {
            if let Some(t) = self.core[local_core][prio].pop_front() {
                return Some((t, PopSource::Core));
            }
            if let Some(t) = self.socket[my_socket][prio].pop_front() {
                return Some((t, PopSource::LocalSocket));
            }
            if let Some(t) = self.node[prio].pop_front() {
                return Some((t, PopSource::Node));
            }
            for s in 0..self.socket.len() {
                if s == my_socket {
                    continue;
                }
                if let Some(t) = self.socket[s][prio].pop_front() {
                    return Some((t, PopSource::RemoteSocket));
                }
            }
        }
        None
    }

    /// Removes a specific thread from wherever it is queued (used when a
    /// queued thread is cancelled). Returns true if found.
    #[allow(dead_code)]
    pub(crate) fn remove(&mut self, tid: ThreadId) -> bool {
        let scan = |q: &mut VecDeque<ThreadId>| {
            q.iter()
                .position(|&t| t == tid)
                .map(|i| q.remove(i))
                .is_some()
        };
        for qs in self.core.iter_mut().chain(self.socket.iter_mut()) {
            for q in qs.iter_mut() {
                if scan(q) {
                    return true;
                }
            }
        }
        for q in self.node.iter_mut() {
            if scan(q) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_sim::rng::Xoshiro256;

    fn t(i: usize) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn priority_dominates_locality() {
        // 4 cores, 2 sockets.
        let mut q = RunQueues::new(4, 2);
        q.push(
            t(1),
            1,
            Placement::Socket {
                socket: 0,
                front: false,
            },
        ); // normal, local
        q.push(
            t(2),
            2,
            Placement::Socket {
                socket: 1,
                front: false,
            },
        ); // high, remote
        let (tid, src) = q.pop_for(0).unwrap();
        assert_eq!(tid, t(2), "high priority wins even cross-socket");
        assert_eq!(src, PopSource::RemoteSocket);
        let (tid, src) = q.pop_for(0).unwrap();
        assert_eq!((tid, src), (t(1), PopSource::LocalSocket));
    }

    #[test]
    fn locality_order_within_priority() {
        let mut q = RunQueues::new(4, 2);
        q.push(t(1), 1, Placement::Node { front: false });
        q.push(
            t(2),
            1,
            Placement::Socket {
                socket: 0,
                front: false,
            },
        );
        q.push(t(3), 1, Placement::Core(0));
        assert_eq!(q.pop_for(0).unwrap(), (t(3), PopSource::Core));
        assert_eq!(q.pop_for(0).unwrap(), (t(2), PopSource::LocalSocket));
        assert_eq!(q.pop_for(0).unwrap(), (t(1), PopSource::Node));
        assert!(q.pop_for(0).is_none());
    }

    #[test]
    fn node_queue_beats_remote_socket_steal() {
        // Same priority: the node-level thread is drained before stealing
        // from another socket (the steal is the last resort of the scan).
        let mut q = RunQueues::new(4, 2);
        q.push(
            t(1),
            1,
            Placement::Socket {
                socket: 1,
                front: false,
            },
        );
        q.push(t(2), 1, Placement::Node { front: false });
        assert_eq!(q.pop_for(0).unwrap(), (t(2), PopSource::Node));
        assert_eq!(q.pop_for(0).unwrap(), (t(1), PopSource::RemoteSocket));
    }

    #[test]
    fn strict_core_queue_is_not_stolen() {
        let mut q = RunQueues::new(4, 2);
        q.push(t(1), 1, Placement::Core(3));
        assert!(
            q.pop_for(0).is_none(),
            "core 0 must not steal core 3's thread"
        );
        assert_eq!(q.pop_for(3).unwrap(), (t(1), PopSource::Core));
    }

    #[test]
    fn urgent_front_insertion() {
        let mut q = RunQueues::new(2, 1);
        q.push(
            t(1),
            2,
            Placement::Socket {
                socket: 0,
                front: false,
            },
        );
        q.push(
            t(2),
            2,
            Placement::Socket {
                socket: 0,
                front: true,
            },
        );
        assert_eq!(q.pop_for(0).unwrap().0, t(2));
        assert_eq!(q.pop_for(0).unwrap().0, t(1));
    }

    #[test]
    fn urgent_front_insertion_on_node_level() {
        let mut q = RunQueues::new(2, 1);
        q.push(t(1), 1, Placement::Node { front: false });
        q.push(t(2), 1, Placement::Node { front: true });
        q.push(t(3), 1, Placement::Node { front: true });
        // Each front-insert jumps everything queued so far: LIFO among
        // urgent, ahead of all non-urgent.
        assert_eq!(q.pop_for(0).unwrap().0, t(3));
        assert_eq!(q.pop_for(0).unwrap().0, t(2));
        assert_eq!(q.pop_for(0).unwrap().0, t(1));
    }

    #[test]
    fn len_counts_all_levels() {
        let mut q = RunQueues::new(4, 2);
        q.push(t(1), 0, Placement::Core(1));
        q.push(
            t(2),
            1,
            Placement::Socket {
                socket: 1,
                front: false,
            },
        );
        q.push(t(3), 2, Placement::Node { front: false });
        assert_eq!(q.len(), 3);
        q.remove(t(2));
        assert_eq!(q.len(), 2);
    }

    /// Randomized pushes; model the queue contents and assert after every
    /// pop that (a) no eligible thread of a higher priority remained
    /// queued (priority dominates locality at every level, stealing
    /// included) and (b) strict-affinity threads never leave their core.
    #[test]
    fn prop_priority_dominates_locality_under_random_load() {
        let mut rng = Xoshiro256::new(0xC0FFEE);
        for round in 0..200 {
            let sockets = 1 + (rng.gen_below(3) as usize); // 1..=3
            let cores = sockets * (1 + rng.gen_below(4) as usize);
            let mut q = RunQueues::new(cores, sockets);
            // Model: priority of every queued thread + its strict core.
            let mut prio_of = std::collections::BTreeMap::new();
            let mut strict = std::collections::BTreeMap::new();
            let n = 1 + rng.gen_below(24) as usize;
            for i in 0..n {
                let prio = rng.gen_below(3) as usize;
                let placement = match rng.gen_below(3) {
                    0 => {
                        let c = rng.gen_below(cores as u64) as usize;
                        strict.insert(t(round * 100 + i), c);
                        Placement::Core(c)
                    }
                    1 => Placement::Socket {
                        socket: rng.gen_below(sockets as u64) as usize,
                        front: rng.gen_bool(0.3),
                    },
                    _ => Placement::Node {
                        front: rng.gen_bool(0.3),
                    },
                };
                prio_of.insert(t(round * 100 + i), prio);
                q.push(t(round * 100 + i), prio, placement);
            }
            let popper = rng.gen_below(cores as u64) as usize;
            let mut popped = 0usize;
            while let Some((tid, _src)) = q.pop_for(popper) {
                let p = prio_of.remove(&tid).expect("popped a queued thread");
                // (b) strict threads only surface on their own core.
                if let Some(c) = strict.get(&tid) {
                    assert_eq!(*c, popper, "strict thread stolen");
                }
                // (a) nothing still queued and *eligible for this core*
                // has a higher priority index.
                let best_left = prio_of
                    .iter()
                    .filter(|(tid, _)| strict.get(*tid).map(|c| *c == popper).unwrap_or(true))
                    .map(|(_, p)| *p)
                    .max();
                if let Some(best) = best_left {
                    assert!(
                        p >= best,
                        "popped prio {p} while an eligible prio-{best} thread waited"
                    );
                }
                popped += 1;
            }
            // Everything non-strict (plus popper-strict) must drain.
            assert!(
                prio_of
                    .keys()
                    .all(|tid| strict.get(tid).map(|c| *c != popper).unwrap_or(false)),
                "eligible threads left queued"
            );
            assert_eq!(popped + prio_of.len(), n);
        }
    }

    /// Randomized front/back pushes at one level+priority must pop with
    /// every `front: true` batch (in LIFO order) ahead of the FIFO rest.
    #[test]
    fn prop_front_insertion_orders_urgent_first() {
        let mut rng = Xoshiro256::new(7);
        for _ in 0..200 {
            let mut q = RunQueues::new(2, 1);
            let n = 1 + rng.gen_below(16) as usize;
            let mut urgent_lifo = Vec::new();
            let mut fifo = std::collections::VecDeque::new();
            for i in 0..n {
                let front = rng.gen_bool(0.5);
                q.push(t(i), 1, Placement::Socket { socket: 0, front });
                // Model of the expected pop order so far.
                if front {
                    urgent_lifo.push(t(i));
                } else {
                    fifo.push_back(t(i));
                }
            }
            let mut expect: Vec<ThreadId> = urgent_lifo.into_iter().rev().collect();
            expect.extend(fifo);
            let mut got = Vec::new();
            while let Some((tid, src)) = q.pop_for(0) {
                assert_eq!(src, PopSource::LocalSocket);
                got.push(tid);
            }
            assert_eq!(got, expect);
        }
    }
}
