//! Hierarchical run queues: core / socket / node levels.
//!
//! Marcel "was carefully designed to … efficiently exploit hierarchical
//! architectures" (§3.1). Ready threads are queued at the level matching
//! what is known about their cache footprint:
//!
//! * **core** — strict affinity only; no other core may pop these;
//! * **socket** — preference: woken communicating threads return to the
//!   socket they last ran on (warm shared cache), but cores of other
//!   sockets may *steal* them rather than idle;
//! * **node** — anywhere (fresh spawns, migrating threads).
//!
//! Priority dominates locality: a high-priority thread in a remote
//! socket's queue is picked before a normal-priority thread in the local
//! one, so urgent wakeups ("communicating threads are ensured to be
//! scheduled as soon as the communication event is detected", §3.2) are
//! never delayed for cache reasons.

use crate::thread::ThreadId;
use std::collections::VecDeque;

const PRIOS: usize = 3;

/// Where to enqueue a ready thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Placement {
    /// Strict: only this local core may run the thread.
    Core(usize),
    /// Preferred socket; `front` jumps the queue (urgent wakeups).
    Socket {
        /// Local socket index.
        socket: usize,
        /// Queue-jump for urgent wakeups.
        front: bool,
    },
    /// Anywhere on the node.
    Node {
        /// Queue-jump for urgent wakeups.
        front: bool,
    },
}

/// Where a popped thread came from (for locality statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PopSource {
    /// Own core queue (strict affinity).
    Core,
    /// Own socket queue (cache-warm).
    LocalSocket,
    /// Node-wide queue.
    Node,
    /// Stolen from another socket's queue.
    RemoteSocket,
}

pub(crate) struct RunQueues {
    core: Vec<[VecDeque<ThreadId>; PRIOS]>,
    socket: Vec<[VecDeque<ThreadId>; PRIOS]>,
    node: [VecDeque<ThreadId>; PRIOS],
    cores_per_socket: usize,
}

fn empty_prios() -> [VecDeque<ThreadId>; PRIOS] {
    [VecDeque::new(), VecDeque::new(), VecDeque::new()]
}

impl RunQueues {
    pub(crate) fn new(cores: usize, sockets: usize) -> Self {
        assert!(sockets > 0 && cores % sockets == 0);
        RunQueues {
            core: (0..cores).map(|_| empty_prios()).collect(),
            socket: (0..sockets).map(|_| empty_prios()).collect(),
            node: empty_prios(),
            cores_per_socket: cores / sockets,
        }
    }

    /// Socket of a local core index.
    pub(crate) fn socket_of(&self, local_core: usize) -> usize {
        local_core / self.cores_per_socket
    }

    pub(crate) fn push(&mut self, tid: ThreadId, prio: usize, placement: Placement) {
        match placement {
            Placement::Core(c) => self.core[c][prio].push_back(tid),
            Placement::Socket { socket, front } => {
                if front {
                    self.socket[socket][prio].push_front(tid);
                } else {
                    self.socket[socket][prio].push_back(tid);
                }
            }
            Placement::Node { front } => {
                if front {
                    self.node[prio].push_front(tid);
                } else {
                    self.node[prio].push_back(tid);
                }
            }
        }
    }

    /// Total queued threads.
    pub(crate) fn len(&self) -> usize {
        let per: usize = self
            .core
            .iter()
            .chain(self.socket.iter())
            .map(|qs| qs.iter().map(VecDeque::len).sum::<usize>())
            .sum();
        per + self.node.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Pops the best thread for `local_core`: highest priority first, then
    /// nearest level; remote-socket stealing beats idling.
    pub(crate) fn pop_for(&mut self, local_core: usize) -> Option<(ThreadId, PopSource)> {
        let my_socket = self.socket_of(local_core);
        for prio in (0..PRIOS).rev() {
            if let Some(t) = self.core[local_core][prio].pop_front() {
                return Some((t, PopSource::Core));
            }
            if let Some(t) = self.socket[my_socket][prio].pop_front() {
                return Some((t, PopSource::LocalSocket));
            }
            if let Some(t) = self.node[prio].pop_front() {
                return Some((t, PopSource::Node));
            }
            for s in 0..self.socket.len() {
                if s == my_socket {
                    continue;
                }
                if let Some(t) = self.socket[s][prio].pop_front() {
                    return Some((t, PopSource::RemoteSocket));
                }
            }
        }
        None
    }

    /// Removes a specific thread from wherever it is queued (used when a
    /// queued thread is cancelled). Returns true if found.
    #[allow(dead_code)]
    pub(crate) fn remove(&mut self, tid: ThreadId) -> bool {
        let scan = |q: &mut VecDeque<ThreadId>| {
            q.iter()
                .position(|&t| t == tid)
                .map(|i| q.remove(i))
                .is_some()
        };
        for qs in self.core.iter_mut().chain(self.socket.iter_mut()) {
            for q in qs.iter_mut() {
                if scan(q) {
                    return true;
                }
            }
        }
        for q in self.node.iter_mut() {
            if scan(q) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn priority_dominates_locality() {
        // 4 cores, 2 sockets.
        let mut q = RunQueues::new(4, 2);
        q.push(
            t(1),
            1,
            Placement::Socket {
                socket: 0,
                front: false,
            },
        ); // normal, local
        q.push(
            t(2),
            2,
            Placement::Socket {
                socket: 1,
                front: false,
            },
        ); // high, remote
        let (tid, src) = q.pop_for(0).unwrap();
        assert_eq!(tid, t(2), "high priority wins even cross-socket");
        assert_eq!(src, PopSource::RemoteSocket);
        let (tid, src) = q.pop_for(0).unwrap();
        assert_eq!((tid, src), (t(1), PopSource::LocalSocket));
    }

    #[test]
    fn locality_order_within_priority() {
        let mut q = RunQueues::new(4, 2);
        q.push(t(1), 1, Placement::Node { front: false });
        q.push(
            t(2),
            1,
            Placement::Socket {
                socket: 0,
                front: false,
            },
        );
        q.push(t(3), 1, Placement::Core(0));
        assert_eq!(q.pop_for(0).unwrap(), (t(3), PopSource::Core));
        assert_eq!(q.pop_for(0).unwrap(), (t(2), PopSource::LocalSocket));
        assert_eq!(q.pop_for(0).unwrap(), (t(1), PopSource::Node));
        assert!(q.pop_for(0).is_none());
    }

    #[test]
    fn strict_core_queue_is_not_stolen() {
        let mut q = RunQueues::new(4, 2);
        q.push(t(1), 1, Placement::Core(3));
        assert!(
            q.pop_for(0).is_none(),
            "core 0 must not steal core 3's thread"
        );
        assert_eq!(q.pop_for(3).unwrap(), (t(1), PopSource::Core));
    }

    #[test]
    fn urgent_front_insertion() {
        let mut q = RunQueues::new(2, 1);
        q.push(
            t(1),
            2,
            Placement::Socket {
                socket: 0,
                front: false,
            },
        );
        q.push(
            t(2),
            2,
            Placement::Socket {
                socket: 0,
                front: true,
            },
        );
        assert_eq!(q.pop_for(0).unwrap().0, t(2));
        assert_eq!(q.pop_for(0).unwrap().0, t(1));
    }

    #[test]
    fn len_counts_all_levels() {
        let mut q = RunQueues::new(4, 2);
        q.push(t(1), 0, Placement::Core(1));
        q.push(
            t(2),
            1,
            Placement::Socket {
                socket: 1,
                front: false,
            },
        );
        q.push(t(3), 2, Placement::Node { front: false });
        assert_eq!(q.len(), 3);
        q.remove(t(2));
        assert_eq!(q.len(), 2);
    }
}
