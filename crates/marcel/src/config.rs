//! Scheduler cost model and policy selection.

use crate::policy::SchedPolicyKind;
use pm2_sim::SimDuration;

/// Virtual-time costs charged by the scheduler, calibrated to the paper's
/// 2.33 GHz Xeon testbed.
#[derive(Debug, Clone)]
pub struct MarcelConfig {
    /// Cost of dispatching a thread onto a core (context switch).
    pub ctx_switch: SimDuration,
    /// Fixed cost of invoking a tasklet on a core of a *different socket*
    /// than the one that scheduled it (the notification crosses the
    /// inter-socket interconnect).
    pub tasklet_invoke_remote: SimDuration,
    /// Invocation cost when the executing core shares the scheduler's
    /// socket: the ≈2 µs "communication between CPUs and invocation of
    /// the tasklet" the paper measures in §4.1 (PIOMAN places tasklets on
    /// the nearest idle core, so this is the common case).
    pub tasklet_invoke_same_socket: SimDuration,
    /// Tasklet invocation cost when the scheduling core runs it itself.
    pub tasklet_invoke_local: SimDuration,
    /// How often an idle core re-runs the idle hooks while any of them is
    /// armed (the busy-wait granularity of "leaving a core idle boils down
    /// to a busy waiting", §3.2).
    pub idle_poll_period: SimDuration,
    /// Period of the scheduler timer tick, used to trigger PIOMAN when no
    /// core is idle. `None` disables the tick.
    pub timer_tick: Option<SimDuration>,
    /// If true, a computing thread lets pending tasklets steal cycles at
    /// timer-tick boundaries (the "timer interrupts" trigger of §3.1).
    /// The stolen time extends the thread's computation — this is the
    /// intrusiveness the paper wants to avoid when idle cores exist.
    pub timer_steals_from_compute: bool,
    /// Which scheduling policy drives thread placement and dispatch.
    /// Defaults to the paper-faithful hierarchical queues.
    pub policy: SchedPolicyKind,
}

impl Default for MarcelConfig {
    fn default() -> Self {
        MarcelConfig {
            ctx_switch: SimDuration::from_nanos(300),
            tasklet_invoke_remote: SimDuration::from_nanos(3_200),
            tasklet_invoke_same_socket: SimDuration::from_micros(2),
            tasklet_invoke_local: SimDuration::from_nanos(500),
            idle_poll_period: SimDuration::from_nanos(500),
            timer_tick: Some(SimDuration::from_micros(100)),
            timer_steals_from_compute: false,
            policy: SchedPolicyKind::default(),
        }
    }
}

impl MarcelConfig {
    /// A zero-cost configuration, useful for unit tests that assert exact
    /// virtual times.
    pub fn zero_cost() -> Self {
        MarcelConfig {
            ctx_switch: SimDuration::ZERO,
            tasklet_invoke_remote: SimDuration::ZERO,
            tasklet_invoke_same_socket: SimDuration::ZERO,
            tasklet_invoke_local: SimDuration::ZERO,
            idle_poll_period: SimDuration::from_nanos(100),
            timer_tick: None,
            timer_steals_from_compute: false,
            policy: SchedPolicyKind::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_overhead() {
        let c = MarcelConfig::default();
        assert_eq!(c.tasklet_invoke_same_socket.as_micros(), 2);
        assert!(c.tasklet_invoke_local < c.tasklet_invoke_same_socket);
        assert!(c.tasklet_invoke_same_socket < c.tasklet_invoke_remote);
    }
}
