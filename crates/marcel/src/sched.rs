//! The scheduler state machine: cores, run queues, tasklets, idle hooks.

use crate::config::MarcelConfig;
use crate::runq::{Placement, PopSource, RunQueues};
use crate::tasklet::{TaskletId, TaskletRec, TaskletRun};
use crate::thread::{Priority, ThreadCtx, ThreadId, WaitDispatched};
use pm2_sim::obs::EventKind;
use pm2_sim::trace::Category;
use pm2_sim::{Sim, SimDuration, SimTime, Slab, TimerHandle, Trigger};
use pm2_topo::{CoreId, NodeId, Topology};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::rc::Rc;
use std::task::Waker;

/// Result of one idle-hook invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookResult {
    /// Nothing to do and nothing expected: the core may truly sleep.
    Nothing,
    /// Nothing to do right now, but events are being awaited: keep polling
    /// (the "busy waiting" of §3.2).
    Armed,
    /// Work was performed, consuming the given CPU time; re-check
    /// immediately afterwards.
    Worked(SimDuration),
    /// Like [`HookResult::Worked`], additionally naming which shard of
    /// the hook's backend did the work (e.g. which PIOMAN progress
    /// driver); Marcel tallies per-shard hook work for it.
    WorkedOn {
        /// CPU time the work consumed.
        cost: SimDuration,
        /// Shard index the work is attributed to.
        shard: u32,
    },
}

/// Identifier of a periodic timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(usize);

/// Scheduler activity counters (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Threads dispatched onto cores.
    pub dispatches: u64,
    /// Tasklet bodies executed.
    pub tasklet_runs: u64,
    /// Tasklet schedules that coalesced into a pending one.
    pub tasklet_coalesced: u64,
    /// Idle-hook sweep invocations.
    pub hook_sweeps: u64,
    /// Tasklet executions that stole cycles from a computing thread.
    pub compute_steals: u64,
    /// Timer callback firings.
    pub timer_ticks: u64,
    /// Dispatches served from the core's own or its socket's queue
    /// (cache-warm).
    pub local_dispatches: u64,
    /// Dispatches that stole a thread queued for another socket.
    pub cross_socket_steals: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    Running(CoreId),
    Blocked,
    Finished,
}

struct ThreadRec {
    state: TState,
    priority: Priority,
    affinity: Option<CoreId>,
    /// Core the thread last ran on (for cache-affine wake placement).
    last_core: Option<CoreId>,
    dispatch_waker: Option<Waker>,
    finished: Trigger,
    park_trigger: Option<Trigger>,
    unpark_permit: bool,
    name: String,
}

struct Core {
    id: CoreId,
    current: Option<ThreadId>,
    /// Occupancy from tasklet/hook work (threads occupy via `current`).
    busy_until: SimTime,
    /// Earliest pending `run_core` event, for deduplication.
    scheduled_run: Option<(SimTime, TimerHandle)>,
}

struct TimerRec {
    cancelled: Rc<std::cell::Cell<bool>>,
}

/// A registered idle hook (shared so a sweep can run hooks unborrowed).
type IdleHook = Rc<dyn Fn(&Marcel, CoreId) -> HookResult>;

struct State {
    cores: Vec<Core>,
    threads: Slab<ThreadRec>,
    tasklets: Slab<TaskletRec>,
    tasklet_queue: VecDeque<TaskletId>,
    runq: RunQueues,
    hooks: Vec<IdleHook>,
    timers: Slab<TimerRec>,
    stats: SchedStats,
    /// Per-shard counts of idle-hook work events
    /// ([`HookResult::WorkedOn`]), indexed by shard.
    hook_shard_work: Vec<u64>,
    /// Per-shard counts of tasklet work events
    /// ([`TaskletRun::note_shard`]), indexed by shard.
    tasklet_shard_work: Vec<u64>,
}

fn bump_shard(v: &mut Vec<u64>, shard: u32) {
    let i = shard as usize;
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    v[i] += 1;
}

struct Inner {
    sim: Sim,
    topo: Rc<Topology>,
    node: NodeId,
    cfg: MarcelConfig,
    state: RefCell<State>,
}

/// Handle to one node's scheduler; cheap to clone.
///
/// # Example
/// ```
/// use pm2_marcel::{Marcel, MarcelConfig, Priority};
/// use pm2_sim::{Sim, SimDuration};
/// use pm2_topo::{NodeId, Topology};
/// use std::rc::Rc;
///
/// let sim = Sim::new(0);
/// let topo = Rc::new(Topology::single_node(4));
/// let marcel = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::default());
/// marcel.spawn("worker", Priority::Normal, None, |ctx| async move {
///     ctx.compute(SimDuration::from_micros(10)).await;
/// });
/// sim.run();
/// assert_eq!(marcel.stats().dispatches, 1);
/// ```
#[derive(Clone)]
pub struct Marcel {
    inner: Rc<Inner>,
}

fn prio_idx(p: Priority) -> usize {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

impl Marcel {
    /// Creates a scheduler owning the cores of `node` in `topo`.
    pub fn new(sim: Sim, topo: Rc<Topology>, node: NodeId, cfg: MarcelConfig) -> Marcel {
        let cores = topo
            .cores_of(node)
            .map(|id| Core {
                id,
                current: None,
                busy_until: SimTime::ZERO,
                scheduled_run: None,
            })
            .collect();
        let runq = RunQueues::new(topo.cores_per_node(), topo.sockets_per_node());
        Marcel {
            inner: Rc::new(Inner {
                sim,
                topo,
                node,
                cfg,
                state: RefCell::new(State {
                    cores,
                    threads: Slab::new(),
                    tasklets: Slab::new(),
                    tasklet_queue: VecDeque::new(),
                    runq,
                    hooks: Vec::new(),
                    timers: Slab::new(),
                    stats: SchedStats::default(),
                    hook_shard_work: Vec::new(),
                    tasklet_shard_work: Vec::new(),
                }),
            }),
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The node this scheduler manages.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Rc<Topology> {
        &self.inner.topo
    }

    /// The cost model in use.
    pub fn config(&self) -> &MarcelConfig {
        &self.inner.cfg
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> SchedStats {
        self.inner.state.borrow().stats
    }

    /// Per-shard idle-hook work counts (index = shard named by
    /// [`HookResult::WorkedOn`]; shards that never worked may be absent).
    pub fn hook_shard_work(&self) -> Vec<u64> {
        self.inner.state.borrow().hook_shard_work.clone()
    }

    /// Per-shard tasklet work counts (index = shard named by
    /// [`TaskletRun::note_shard`]).
    pub fn tasklet_shard_work(&self) -> Vec<u64> {
        self.inner.state.borrow().tasklet_shard_work.clone()
    }

    fn local(&self, core: CoreId) -> usize {
        debug_assert_eq!(self.inner.topo.node_of(core), self.inner.node);
        self.inner.topo.local_index(core)
    }

    // ----- threads ------------------------------------------------------

    /// Spawns a Marcel thread running `body`.
    ///
    /// The thread starts in the ready queue and runs once a core dispatches
    /// it. `affinity` restricts it to a single core if given.
    pub fn spawn<F, Fut>(
        &self,
        name: impl Into<String>,
        priority: Priority,
        affinity: Option<CoreId>,
        body: F,
    ) -> ThreadId
    where
        F: FnOnce(ThreadCtx) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let name = name.into();
        let id = {
            let mut st = self.inner.state.borrow_mut();
            let id = ThreadId(st.threads.insert(ThreadRec {
                state: TState::Ready,
                priority,
                affinity,
                last_core: None,
                dispatch_waker: None,
                finished: Trigger::new(),
                park_trigger: None,
                unpark_permit: false,
                name: name.clone(),
            }));
            let placement = match affinity {
                Some(c) => Placement::Core(self.local(c)),
                None => Placement::Node { front: false },
            };
            st.runq.push(id, prio_idx(priority), placement);
            id
        };
        let kick_target = affinity;
        let marcel = self.clone();
        let ctx = ThreadCtx {
            marcel: self.clone(),
            id,
        };
        self.inner.sim.spawn_named(Some(name), async move {
            WaitDispatched {
                marcel: marcel.clone(),
                id,
            }
            .await;
            body(ctx).await;
            marcel.finish_thread(id);
        });
        match kick_target {
            Some(core) => self.schedule_run(core, SimDuration::ZERO),
            None => self.kick_one_idle(),
        }
        id
    }

    /// Trigger fired when `thread` finishes.
    pub fn finished(&self, thread: ThreadId) -> Trigger {
        self.inner
            .state
            .borrow()
            .threads
            .get(thread.0)
            .expect("unknown thread")
            .finished
            .clone()
    }

    /// Wakes a parked thread (or stores a permit if it is not parked).
    pub fn unpark(&self, thread: ThreadId) {
        let trig = {
            let mut st = self.inner.state.borrow_mut();
            let Some(rec) = st.threads.get_mut(thread.0) else {
                return;
            };
            match rec.park_trigger.take() {
                Some(t) => Some(t),
                None => {
                    rec.unpark_permit = true;
                    None
                }
            }
        };
        if let Some(t) = trig {
            t.fire();
        }
    }

    /// Debug name of a thread.
    pub fn thread_name(&self, thread: ThreadId) -> Option<String> {
        self.inner
            .state
            .borrow()
            .threads
            .get(thread.0)
            .map(|r| r.name.clone())
    }

    pub(crate) fn begin_park(&self, thread: ThreadId) -> Option<Trigger> {
        let mut st = self.inner.state.borrow_mut();
        let rec = st.threads.get_mut(thread.0).expect("unknown thread");
        if rec.unpark_permit {
            rec.unpark_permit = false;
            None
        } else {
            let t = Trigger::new();
            rec.park_trigger = Some(t.clone());
            Some(t)
        }
    }

    pub(crate) fn is_running(&self, thread: ThreadId) -> bool {
        matches!(
            self.inner
                .state
                .borrow()
                .threads
                .get(thread.0)
                .map(|r| r.state),
            Some(TState::Running(_))
        )
    }

    pub(crate) fn core_of(&self, thread: ThreadId) -> Option<CoreId> {
        match self.inner.state.borrow().threads.get(thread.0)?.state {
            TState::Running(c) => Some(c),
            _ => None,
        }
    }

    pub(crate) fn set_dispatch_waker(&self, thread: ThreadId, waker: Waker) {
        if let Some(rec) = self.inner.state.borrow_mut().threads.get_mut(thread.0) {
            rec.dispatch_waker = Some(waker);
        }
    }

    /// Marks `thread` blocked and frees its core.
    pub(crate) fn release_blocked(&self, thread: ThreadId) {
        self.release_core_of(thread, TState::Blocked, false);
    }

    /// Marks `thread` ready (requeued at the back) and frees its core.
    pub(crate) fn release_ready(&self, thread: ThreadId) {
        self.release_core_of(thread, TState::Ready, true);
    }

    fn release_core_of(&self, thread: ThreadId, new_state: TState, requeue: bool) {
        let freed = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.threads.get_mut(thread.0).expect("unknown thread");
            let TState::Running(core) = rec.state else {
                panic!("thread {thread:?} released while not running");
            };
            rec.state = new_state;
            rec.last_core = Some(core);
            if requeue {
                let p = prio_idx(rec.priority);
                let placement = match rec.affinity {
                    Some(c) => Placement::Core(self.local(c)),
                    // A yielding thread is cache-warm: prefer its socket.
                    None => Placement::Socket {
                        socket: st.runq.socket_of(self.local(core)),
                        front: false,
                    },
                };
                st.runq.push(thread, p, placement);
            }
            let local = self.local(core);
            debug_assert_eq!(st.cores[local].current, Some(thread));
            st.cores[local].current = None;
            core
        };
        self.trace(Category::Sched, || {
            format!("release {:?} -> {:?}", thread, new_state)
        });
        self.schedule_run(freed, SimDuration::ZERO);
    }

    /// Requeues a blocked thread; `urgent` raises it to high priority and
    /// front-queues it on the socket it last ran on (warm cache) — "asks
    /// MARCEL to schedule it" as soon as the event is detected (§3.2).
    pub(crate) fn make_ready(&self, thread: ThreadId, urgent: bool) {
        let (affinity, last_core) = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.threads.get_mut(thread.0).expect("unknown thread");
            debug_assert_eq!(rec.state, TState::Blocked);
            rec.state = TState::Ready;
            let affinity = rec.affinity;
            let last_core = rec.last_core;
            let p = if urgent {
                prio_idx(Priority::High)
            } else {
                prio_idx(rec.priority)
            };
            let placement = match (affinity, last_core) {
                (Some(c), _) => Placement::Core(self.local(c)),
                (None, Some(c)) => Placement::Socket {
                    socket: st.runq.socket_of(self.local(c)),
                    front: urgent,
                },
                (None, None) => Placement::Node { front: urgent },
            };
            st.runq.push(thread, p, placement);
            (affinity, last_core)
        };
        match (affinity, last_core) {
            (Some(core), _) => self.schedule_run(core, SimDuration::ZERO),
            (None, Some(core)) => self.kick_idle_near(Some(core)),
            (None, None) => self.kick_one_idle(),
        }
    }

    fn finish_thread(&self, thread: ThreadId) {
        let (core, finished) = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.threads.get_mut(thread.0).expect("unknown thread");
            let core = match rec.state {
                TState::Running(c) => Some(c),
                _ => None,
            };
            rec.state = TState::Finished;
            let finished = rec.finished.clone();
            if let Some(c) = core {
                let local = self.inner.topo.local_index(c);
                st.cores[local].current = None;
            }
            (core, finished)
        };
        finished.fire();
        if let Some(c) = core {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    // ----- load information (consumed by PIOMAN) -------------------------

    /// Number of cores with no thread and no tasklet work right now.
    pub fn idle_core_count(&self) -> usize {
        let now = self.inner.sim.now();
        self.inner
            .state
            .borrow()
            .cores
            .iter()
            .filter(|c| c.current.is_none() && c.busy_until <= now)
            .count()
    }

    /// True if at least one core is idle.
    pub fn has_idle_core(&self) -> bool {
        self.idle_core_count() > 0
    }

    /// Number of threads currently running on a core.
    pub fn running_thread_count(&self) -> usize {
        self.inner
            .state
            .borrow()
            .threads
            .iter()
            .filter(|(_, r)| matches!(r.state, TState::Running(_)))
            .count()
    }

    /// Number of threads waiting in the run queues.
    pub fn ready_thread_count(&self) -> usize {
        self.inner.state.borrow().runq.len()
    }

    /// Number of threads not yet finished.
    pub fn live_thread_count(&self) -> usize {
        self.inner
            .state
            .borrow()
            .threads
            .iter()
            .filter(|(_, r)| r.state != TState::Finished)
            .count()
    }

    // ----- tasklets -------------------------------------------------------

    /// Registers a tasklet; its body reports consumed CPU time through the
    /// [`TaskletRun`] it receives.
    pub fn create_tasklet(
        &self,
        name: impl Into<String>,
        body: impl FnMut(&mut TaskletRun) + 'static,
    ) -> TaskletId {
        let mut st = self.inner.state.borrow_mut();
        TaskletId(st.tasklets.insert(TaskletRec {
            body: Some(Box::new(body)),
            scheduled: false,
            running: false,
            disabled: 0,
            origin: None,
            runs: 0,
            name: name.into(),
        }))
    }

    /// Schedules a tasklet for execution; coalesces if already scheduled.
    ///
    /// `from` is the core requesting the work (used to price the cross-CPU
    /// invocation); `None` means "no particular core" (e.g. scheduled from
    /// a timer).
    ///
    /// Returns `true` if this call enqueued it.
    pub fn tasklet_schedule(&self, tasklet: TaskletId, from: Option<CoreId>) -> bool {
        let enqueued = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.tasklets.get_mut(tasklet.0).expect("unknown tasklet");
            if rec.scheduled {
                st.stats.tasklet_coalesced += 1;
                false
            } else {
                rec.scheduled = true;
                rec.origin = from;
                st.tasklet_queue.push_back(tasklet);
                true
            }
        };
        if enqueued {
            self.trace(Category::Tasklet, || format!("schedule {tasklet:?}"));
            self.kick_idle_near(from);
        }
        enqueued
    }

    /// Forbids execution of a tasklet (nestable).
    pub fn tasklet_disable(&self, tasklet: TaskletId) {
        let mut st = self.inner.state.borrow_mut();
        st.tasklets
            .get_mut(tasklet.0)
            .expect("unknown tasklet")
            .disabled += 1;
    }

    /// Re-allows execution of a tasklet.
    ///
    /// # Panics
    /// Panics on unbalanced enable.
    pub fn tasklet_enable(&self, tasklet: TaskletId) {
        {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.tasklets.get_mut(tasklet.0).expect("unknown tasklet");
            assert!(rec.disabled > 0, "tasklet_enable without disable");
            rec.disabled -= 1;
        }
        self.kick_one_idle();
    }

    /// Number of executions of a tasklet so far.
    pub fn tasklet_runs(&self, tasklet: TaskletId) -> u64 {
        self.inner
            .state
            .borrow()
            .tasklets
            .get(tasklet.0)
            .expect("unknown tasklet")
            .runs
    }

    /// True if any enabled tasklet is waiting to run.
    pub fn has_pending_tasklet(&self) -> bool {
        let st = self.inner.state.borrow();
        st.tasklet_queue.iter().any(|t| {
            st.tasklets
                .get(t.0)
                .map(|r| r.disabled == 0 && !r.running)
                .unwrap_or(false)
        })
    }

    /// Pops the next runnable tasklet id, skipping disabled/running ones.
    fn pop_ready_tasklet(st: &mut State) -> Option<TaskletId> {
        let mut scanned = 0;
        let len = st.tasklet_queue.len();
        while scanned < len {
            let id = st.tasklet_queue.pop_front()?;
            let rec = st.tasklets.get(id.0).expect("queued tasklet missing");
            if rec.disabled == 0 && !rec.running {
                return Some(id);
            }
            st.tasklet_queue.push_back(id);
            scanned += 1;
        }
        None
    }

    /// Claims a tasklet for execution on `on` (sets the RUN bit) and
    /// returns the invocation cost: the cross-CPU notification penalty if
    /// the scheduling core differs from the executing one (the ≈2 µs the
    /// paper measures in §4.1).
    fn claim_tasklet(&self, id: TaskletId, on: CoreId) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let cfg = &self.inner.cfg;
        let rec = st.tasklets.get_mut(id.0).expect("unknown tasklet");
        debug_assert!(!rec.running, "claiming a running tasklet");
        rec.running = true;
        match rec.origin {
            None => cfg.tasklet_invoke_local,
            Some(o) => match self.inner.topo.distance(o, on) {
                pm2_topo::Distance::Same => cfg.tasklet_invoke_local,
                pm2_topo::Distance::SameSocket => cfg.tasklet_invoke_same_socket,
                _ => cfg.tasklet_invoke_remote,
            },
        }
    }

    /// Runs a claimed tasklet's body; returns the CPU cost it charged.
    ///
    /// The invocation delay has already elapsed by the time this runs, so
    /// the body's side effects (NIC submissions…) happen at the right
    /// virtual instant.
    fn execute_tasklet_body(&self, id: TaskletId, on: CoreId, stolen: bool) -> SimDuration {
        let (mut body, name) = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.tasklets.get_mut(id.0).expect("unknown tasklet");
            rec.scheduled = false;
            (
                rec.body.take().expect("tasklet body in use"),
                rec.name.clone(),
            )
        };
        let mut run = TaskletRun::new(on);
        body(&mut run);
        let (charged, resched, shard) = run.take_outcome();
        {
            let mut st = self.inner.state.borrow_mut();
            st.stats.tasklet_runs += 1;
            if stolen {
                st.stats.compute_steals += 1;
            }
            if let Some(s) = shard {
                bump_shard(&mut st.tasklet_shard_work, s);
            }
            let rec = st.tasklets.get_mut(id.0).expect("unknown tasklet");
            rec.body = Some(body);
            rec.running = false;
            rec.runs += 1;
        }
        if resched {
            self.tasklet_schedule(id, Some(on));
        }
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(self.node().0),
            EventKind::TaskletRun {
                tasklet: id.0 as u64,
                core: on.0,
                shard: shard.map(|s| s as usize),
                cost: charged.as_nanos(),
            },
        );
        self.trace(Category::Tasklet, || {
            format!("ran {name} ({id:?}) on {on} cost={charged}")
        });
        charged
    }

    /// Lets a computing thread donate cycles to one pending tasklet.
    /// Returns the CPU time consumed (zero if nothing was pending).
    pub(crate) fn steal_one_tasklet(&self, thread: ThreadId) -> SimDuration {
        let core = match self.core_of(thread) {
            Some(c) => c,
            None => return SimDuration::ZERO,
        };
        let next = {
            let mut st = self.inner.state.borrow_mut();
            Self::pop_ready_tasklet(&mut st)
        };
        match next {
            Some(id) => {
                // The steal happens inside the thread's compute window, so
                // invocation and body run back-to-back.
                let invoke = self.claim_tasklet(id, core);
                invoke + self.execute_tasklet_body(id, core, true)
            }
            None => SimDuration::ZERO,
        }
    }

    pub(crate) fn compute_steal_config(&self) -> Option<SimDuration> {
        if self.inner.cfg.timer_steals_from_compute {
            self.inner.cfg.timer_tick
        } else {
            None
        }
    }

    // ----- idle hooks -----------------------------------------------------

    /// Registers an idle hook, called whenever a core runs out of work.
    pub fn register_idle_hook(&self, hook: impl Fn(&Marcel, CoreId) -> HookResult + 'static) {
        self.inner.state.borrow_mut().hooks.push(Rc::new(hook));
    }

    // ----- timers ---------------------------------------------------------

    /// Starts a periodic timer firing `callback` every `period`.
    ///
    /// The timer stops automatically when all threads have finished (so
    /// that simulations terminate) or when cancelled.
    pub fn start_timer(
        &self,
        period: SimDuration,
        callback: impl Fn(&Marcel) + 'static,
    ) -> TimerId {
        assert!(!period.is_zero(), "timer period must be positive");
        let cancelled = Rc::new(std::cell::Cell::new(false));
        let id = TimerId(self.inner.state.borrow_mut().timers.insert(TimerRec {
            cancelled: Rc::clone(&cancelled),
        }));
        let marcel = self.clone();
        let cb = Rc::new(callback);
        arm_timer(marcel, period, cb, cancelled);
        id
    }

    /// Cancels a periodic timer.
    pub fn cancel_timer(&self, id: TimerId) {
        if let Some(rec) = self.inner.state.borrow_mut().timers.remove(id.0) {
            rec.cancelled.set(true);
        }
    }

    // ----- core engine ----------------------------------------------------

    /// Nudges every idle core to look for work now (used by PIOMAN when new
    /// requests arrive).
    pub fn kick_all_idle(&self) {
        let now = self.inner.sim.now();
        let idle: Vec<CoreId> = self
            .inner
            .state
            .borrow()
            .cores
            .iter()
            .filter(|c| c.current.is_none() && c.busy_until <= now)
            .map(|c| c.id)
            .collect();
        for c in idle {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    fn kick_one_idle(&self) {
        let now = self.inner.sim.now();
        let idle = {
            let st = self.inner.state.borrow();
            let is_idle = |c: &Core| c.current.is_none() && c.busy_until <= now;
            // Prefer an idle core with no run already pending so that two
            // ready threads wake two distinct cores.
            st.cores
                .iter()
                .find(|c| is_idle(c) && c.scheduled_run.is_none())
                .or_else(|| st.cores.iter().find(|c| is_idle(c)))
                .map(|c| c.id)
        };
        if let Some(c) = idle {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    /// Kicks the idle core nearest to `origin` (or any idle core).
    fn kick_idle_near(&self, origin: Option<CoreId>) {
        let now = self.inner.sim.now();
        let chosen = {
            let st = self.inner.state.borrow();
            let is_idle = |c: &Core| c.current.is_none() && c.busy_until <= now;
            let fallback = || {
                st.cores
                    .iter()
                    .find(|c| is_idle(c) && c.scheduled_run.is_none())
                    .or_else(|| st.cores.iter().find(|c| is_idle(c)))
                    .map(|c| c.id)
            };
            match origin {
                Some(o) => self
                    .inner
                    .topo
                    .neighbours_by_distance(o)
                    .into_iter()
                    .find(|&cand| {
                        let local = self.inner.topo.local_index(cand);
                        let c = &st.cores[local];
                        is_idle(c) && c.scheduled_run.is_none()
                    })
                    .or_else(fallback),
                None => fallback(),
            }
        };
        if let Some(c) = chosen {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    /// Schedules `run_core(core)` after `delay`, deduplicating against an
    /// already-pending earlier or equal run.
    fn schedule_run(&self, core: CoreId, delay: SimDuration) {
        let at = self.inner.sim.now() + delay;
        let local = self.local(core);
        {
            let mut st = self.inner.state.borrow_mut();
            let slot = &mut st.cores[local].scheduled_run;
            if let Some((t, _)) = slot {
                if *t <= at {
                    return; // an earlier (or same-time) run is already pending
                }
                if let Some((_, h)) = slot.take() {
                    h.cancel();
                }
            }
            let marcel = self.clone();
            let handle = self.inner.sim.schedule_at(at, move |_| {
                marcel.inner.state.borrow_mut().cores[local].scheduled_run = None;
                marcel.run_core(core);
            });
            *slot = Some((at, handle));
        }
    }

    /// The per-core work loop: tasklets first, then threads, then idle
    /// hooks.
    fn run_core(&self, core: CoreId) {
        let local = self.local(core);
        loop {
            let now = self.inner.sim.now();
            // Phase 0: occupied?
            {
                let st = self.inner.state.borrow();
                let c = &st.cores[local];
                if c.current.is_some() {
                    return; // the running thread will release the core
                }
                if c.busy_until > now {
                    // Tasklet/hook work in flight: come back when it ends.
                    let until = c.busy_until;
                    drop(st);
                    self.schedule_run(core, until - now);
                    return;
                }
            }
            // Phase 1: tasklets. The invocation penalty (cross-CPU
            // notification) elapses before the body runs, so offloaded
            // submissions hit the wire 2 µs after being scheduled from a
            // remote core — the overhead the paper measures in §4.1.
            let tasklet = {
                let mut st = self.inner.state.borrow_mut();
                Self::pop_ready_tasklet(&mut st)
            };
            if let Some(id) = tasklet {
                let invoke = self.claim_tasklet(id, core);
                if invoke.is_zero() {
                    let cost = self.execute_tasklet_body(id, core, false);
                    if !cost.is_zero() {
                        let mut st = self.inner.state.borrow_mut();
                        st.cores[local].busy_until = now + cost;
                        drop(st);
                        self.schedule_run(core, cost);
                        return;
                    }
                    continue;
                }
                {
                    let mut st = self.inner.state.borrow_mut();
                    st.cores[local].busy_until = now + invoke;
                }
                let marcel = self.clone();
                self.inner.sim.schedule_in(invoke, move |sim| {
                    let cost = marcel.execute_tasklet_body(id, core, false);
                    let local = marcel.local(core);
                    let t = sim.now();
                    marcel.inner.state.borrow_mut().cores[local].busy_until = t + cost;
                    marcel.schedule_run(core, cost);
                });
                return;
            }
            // Phase 2: threads.
            let thread = self.pop_runqueue_for(core);
            if let Some(tid) = thread {
                let ctx_switch = self.inner.cfg.ctx_switch;
                {
                    let mut st = self.inner.state.borrow_mut();
                    st.stats.dispatches += 1;
                    let rec = st.threads.get_mut(tid.0).expect("queued thread missing");
                    debug_assert_eq!(rec.state, TState::Ready);
                    rec.state = TState::Running(core);
                    rec.last_core = Some(core);
                    st.cores[local].current = Some(tid);
                }
                self.trace(Category::Sched, || {
                    format!("dispatch {:?} on {}", tid, core)
                });
                if ctx_switch.is_zero() {
                    self.wake_dispatch(tid);
                } else {
                    let marcel = self.clone();
                    self.inner
                        .sim
                        .schedule_in(ctx_switch, move |_| marcel.wake_dispatch(tid));
                }
                // More ready threads? Wake another idle core for them.
                if self.ready_thread_count() > 0 {
                    self.kick_one_idle();
                }
                return;
            }
            // Phase 3: idle hooks.
            let hooks: Vec<IdleHook> = {
                let mut st = self.inner.state.borrow_mut();
                st.stats.hook_sweeps += 1;
                st.hooks.clone()
            };
            let mut cost = SimDuration::ZERO;
            let mut armed = false;
            for hook in hooks {
                match hook(self, core) {
                    HookResult::Nothing => {}
                    HookResult::Armed => armed = true,
                    HookResult::Worked(c) => {
                        armed = true;
                        cost += c;
                        self.inner.sim.obs().emit(
                            now,
                            Some(self.node().0),
                            EventKind::HookWork {
                                core: core.0,
                                shard: None,
                                cost: c.as_nanos(),
                            },
                        );
                    }
                    HookResult::WorkedOn { cost: c, shard } => {
                        armed = true;
                        cost += c;
                        let mut st = self.inner.state.borrow_mut();
                        bump_shard(&mut st.hook_shard_work, shard);
                        drop(st);
                        self.inner.sim.obs().emit(
                            now,
                            Some(self.node().0),
                            EventKind::HookWork {
                                core: core.0,
                                shard: Some(shard as usize),
                                cost: c.as_nanos(),
                            },
                        );
                    }
                }
            }
            if !cost.is_zero() {
                let mut st = self.inner.state.borrow_mut();
                st.cores[local].busy_until = now + cost;
                drop(st);
                self.schedule_run(core, cost);
                return;
            }
            if armed {
                self.schedule_run(core, self.inner.cfg.idle_poll_period);
                return;
            }
            // Truly idle: sleep until kicked.
            return;
        }
    }

    /// Pops the highest-priority ready thread eligible to run on `core`,
    /// preferring cache-warm placements and stealing cross-socket rather
    /// than idling.
    fn pop_runqueue_for(&self, core: CoreId) -> Option<ThreadId> {
        let local = self.local(core);
        let mut st = self.inner.state.borrow_mut();
        match st.runq.pop_for(local) {
            Some((tid, src)) => {
                match src {
                    PopSource::RemoteSocket => st.stats.cross_socket_steals += 1,
                    PopSource::Core | PopSource::LocalSocket => st.stats.local_dispatches += 1,
                    PopSource::Node => {}
                }
                Some(tid)
            }
            None => None,
        }
    }

    fn wake_dispatch(&self, thread: ThreadId) {
        let waker = {
            let mut st = self.inner.state.borrow_mut();
            st.threads
                .get_mut(thread.0)
                .and_then(|r| r.dispatch_waker.take())
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn trace(&self, cat: Category, f: impl FnOnce() -> String) {
        self.inner
            .sim
            .trace()
            .emit_with(self.inner.sim.now(), cat, f);
    }
}

fn arm_timer(
    marcel: Marcel,
    period: SimDuration,
    cb: Rc<dyn Fn(&Marcel)>,
    cancelled: Rc<std::cell::Cell<bool>>,
) {
    let sim = marcel.sim().clone();
    sim.schedule_in(period, move |_| {
        if cancelled.get() {
            return;
        }
        // Auto-stop when the node has gone quiet, so simulations terminate.
        if marcel.live_thread_count() == 0 && !marcel.has_pending_tasklet() {
            return;
        }
        marcel.inner.state.borrow_mut().stats.timer_ticks += 1;
        cb(&marcel);
        arm_timer(marcel.clone(), period, Rc::clone(&cb), cancelled.clone());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn setup(cores: usize) -> (Sim, Marcel) {
        let sim = Sim::new(1);
        let topo = Rc::new(Topology::single_node(cores));
        let m = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::zero_cost());
        (sim, m)
    }

    #[test]
    fn thread_computes_and_finishes() {
        let (sim, m) = setup(2);
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        m.spawn("t", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(20)).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert_eq!(done.get(), 20);
        assert_eq!(m.live_thread_count(), 0);
        assert_eq!(m.stats().dispatches, 1);
    }

    #[test]
    fn two_threads_on_two_cores_run_in_parallel() {
        let (sim, m) = setup(2);
        let t_end = Rc::new(Cell::new(0u64));
        for _ in 0..2 {
            let t_end = Rc::clone(&t_end);
            m.spawn("t", Priority::Normal, None, move |ctx| async move {
                ctx.compute(SimDuration::from_micros(50)).await;
                t_end.set(t_end.get().max(ctx.marcel().sim().now().as_micros()));
            });
        }
        sim.run();
        assert_eq!(t_end.get(), 50, "both should finish at t=50 (parallel)");
    }

    #[test]
    fn two_threads_on_one_core_serialize() {
        let (sim, m) = setup(1);
        let t_end = Rc::new(Cell::new(0u64));
        for _ in 0..2 {
            let t_end = Rc::clone(&t_end);
            m.spawn("t", Priority::Normal, None, move |ctx| async move {
                ctx.compute(SimDuration::from_micros(50)).await;
                t_end.set(t_end.get().max(ctx.marcel().sim().now().as_micros()));
            });
        }
        sim.run();
        assert_eq!(t_end.get(), 100, "single core must serialize");
    }

    #[test]
    fn affinity_pins_thread_to_core() {
        let (sim, m) = setup(2);
        let cores_seen = Rc::new(std::cell::RefCell::new(Vec::new()));
        for _ in 0..2 {
            let cores_seen = Rc::clone(&cores_seen);
            m.spawn(
                "pinned",
                Priority::Normal,
                Some(CoreId(1)),
                move |ctx| async move {
                    cores_seen.borrow_mut().push(ctx.current_core().unwrap());
                    ctx.compute(SimDuration::from_micros(10)).await;
                },
            );
        }
        sim.run();
        assert_eq!(*cores_seen.borrow(), vec![CoreId(1), CoreId(1)]);
        // Serialized on core 1 even though core 0 was free.
        assert_eq!(sim.now().as_micros(), 20);
    }

    #[test]
    fn block_until_releases_core_for_other_work() {
        let (sim, m) = setup(1);
        let trig = Trigger::new();
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        {
            let trig = trig.clone();
            let order = Rc::clone(&order);
            m.spawn("waiter", Priority::Normal, None, move |ctx| async move {
                order.borrow_mut().push("wait-start");
                ctx.block_until(&trig, true).await;
                order.borrow_mut().push("wait-done");
            });
        }
        {
            let trig = trig.clone();
            let order = Rc::clone(&order);
            m.spawn("worker", Priority::Normal, None, move |ctx| async move {
                order.borrow_mut().push("work");
                ctx.compute(SimDuration::from_micros(5)).await;
                trig.fire();
            });
        }
        sim.run();
        assert_eq!(
            *order.borrow(),
            vec!["wait-start", "work", "wait-done"],
            "waiter must free the single core for the worker"
        );
        assert_eq!(sim.now().as_micros(), 5);
    }

    #[test]
    fn block_until_fired_trigger_does_not_release() {
        let (sim, m) = setup(1);
        let trig = Trigger::new();
        trig.fire();
        let t = trig.clone();
        m.spawn("t", Priority::Normal, None, move |ctx| async move {
            ctx.block_until(&t, false).await;
            ctx.compute(SimDuration::from_micros(1)).await;
        });
        sim.run();
        assert_eq!(m.stats().dispatches, 1, "no re-dispatch should occur");
    }

    #[test]
    fn park_unpark_with_permit() {
        let (sim, m) = setup(1);
        let hits = Rc::new(Cell::new(0));
        let hits2 = Rc::clone(&hits);
        let tid = m.spawn("p", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(5)).await;
            // unpark arrived during compute: permit makes this immediate.
            ctx.park().await;
            hits2.set(1);
        });
        let m2 = m.clone();
        sim.schedule_in(SimDuration::from_micros(1), move |_| m2.unpark(tid));
        sim.run();
        assert_eq!(hits.get(), 1);
        assert_eq!(sim.now().as_micros(), 5);
    }

    #[test]
    fn park_blocks_until_unpark() {
        let (sim, m) = setup(1);
        let woke_at = Rc::new(Cell::new(0u64));
        let woke_at2 = Rc::clone(&woke_at);
        let tid = m.spawn("p", Priority::Normal, None, move |ctx| async move {
            ctx.park().await;
            woke_at2.set(ctx.marcel().sim().now().as_micros());
        });
        let m2 = m.clone();
        sim.schedule_in(SimDuration::from_micros(42), move |_| m2.unpark(tid));
        sim.run();
        assert_eq!(woke_at.get(), 42);
    }

    #[test]
    fn tasklet_runs_on_idle_core_and_charges_cost() {
        let (sim, m) = setup(2);
        let ran_at = Rc::new(Cell::new(0u64));
        let ran_at2 = Rc::clone(&ran_at);
        let sim2 = sim.clone();
        let tk = m.create_tasklet("t", move |run| {
            ran_at2.set(sim2.now().as_micros());
            run.charge(SimDuration::from_micros(7));
        });
        m.tasklet_schedule(tk, None);
        sim.run();
        assert_eq!(ran_at.get(), 0, "runs immediately on an idle core");
        assert_eq!(m.tasklet_runs(tk), 1);
    }

    #[test]
    fn tasklet_coalesces() {
        let (sim, m) = setup(1);
        let tk = m.create_tasklet("t", |_| {});
        assert!(m.tasklet_schedule(tk, None));
        assert!(!m.tasklet_schedule(tk, None));
        sim.run();
        assert_eq!(m.tasklet_runs(tk), 1);
        assert_eq!(m.stats().tasklet_coalesced, 1);
    }

    #[test]
    fn tasklet_waits_for_busy_cores() {
        // One core, one long-running thread: the tasklet only runs when the
        // thread finishes.
        let (sim, m) = setup(1);
        let ran_at = Rc::new(Cell::new(0u64));
        let ran_at2 = Rc::clone(&ran_at);
        let sim2 = sim.clone();
        let tk = m.create_tasklet("t", move |_| {
            ran_at2.set(sim2.now().as_micros());
        });
        let m2 = m.clone();
        m.spawn("busy", Priority::Normal, None, move |ctx| async move {
            m2.tasklet_schedule(tk, ctx.current_core());
            ctx.compute(SimDuration::from_micros(30)).await;
        });
        sim.run();
        assert_eq!(ran_at.get(), 30);
    }

    #[test]
    fn disabled_tasklet_defers() {
        let (sim, m) = setup(1);
        let tk = m.create_tasklet("t", |_| {});
        m.tasklet_disable(tk);
        m.tasklet_schedule(tk, None);
        sim.run();
        assert_eq!(m.tasklet_runs(tk), 0);
        m.tasklet_enable(tk);
        sim.run();
        assert_eq!(m.tasklet_runs(tk), 1);
    }

    #[test]
    fn tasklet_reschedule_from_body_runs_again() {
        let (sim, m) = setup(1);
        let count = Rc::new(Cell::new(0u32));
        let count2 = Rc::clone(&count);
        let tk = m.create_tasklet("t", move |run| {
            let c = count2.get() + 1;
            count2.set(c);
            run.charge(SimDuration::from_micros(1));
            if c < 3 {
                run.reschedule();
            }
        });
        m.tasklet_schedule(tk, None);
        sim.run();
        assert_eq!(count.get(), 3);
        assert_eq!(sim.now().as_micros(), 3);
    }

    #[test]
    fn idle_hook_runs_when_core_idle() {
        let (sim, m) = setup(1);
        let polls = Rc::new(Cell::new(0u32));
        let polls2 = Rc::clone(&polls);
        m.register_idle_hook(move |_, _| {
            let c = polls2.get();
            if c < 5 {
                polls2.set(c + 1);
                HookResult::Worked(SimDuration::from_micros(1))
            } else {
                HookResult::Nothing
            }
        });
        m.spawn("t", Priority::Normal, None, |ctx| async move {
            ctx.compute(SimDuration::from_micros(2)).await;
        });
        sim.run();
        assert_eq!(polls.get(), 5, "hook should poll after the thread ends");
    }

    #[test]
    fn armed_hook_keeps_polling_until_disarmed() {
        let (sim, m) = setup(1);
        let armed = Rc::new(Cell::new(true));
        let polls = Rc::new(Cell::new(0u32));
        {
            let armed = Rc::clone(&armed);
            let polls = Rc::clone(&polls);
            m.register_idle_hook(move |_, _| {
                if armed.get() {
                    polls.set(polls.get() + 1);
                    HookResult::Armed
                } else {
                    HookResult::Nothing
                }
            });
        }
        // A thread must exist once so the core wakes up at least once.
        m.spawn("t", Priority::Normal, None, |_ctx| async move {});
        let armed2 = Rc::clone(&armed);
        sim.schedule_in(SimDuration::from_micros(10), move |_| armed2.set(false));
        sim.run();
        assert!(
            polls.get() >= 10,
            "polled every 0.1µs for 10µs: {}",
            polls.get()
        );
        assert!(sim.now().as_micros() >= 10);
    }

    #[test]
    fn priorities_dispatch_high_first() {
        let (sim, m) = setup(1);
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        // Occupy the core so the next two spawns queue up.
        m.spawn("first", Priority::Normal, None, |ctx| async move {
            ctx.compute(SimDuration::from_micros(1)).await;
        });
        for (name, prio) in [("low", Priority::Low), ("high", Priority::High)] {
            let order = Rc::clone(&order);
            m.spawn(name, prio, None, move |ctx| async move {
                order.borrow_mut().push(name);
                ctx.compute(SimDuration::from_micros(1)).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["high", "low"]);
    }

    #[test]
    fn timer_fires_periodically_and_stops_when_quiet() {
        let sim = Sim::new(1);
        let topo = Rc::new(Topology::single_node(1));
        let cfg = MarcelConfig {
            timer_tick: Some(SimDuration::from_micros(10)),
            ..MarcelConfig::zero_cost()
        };
        let m = Marcel::new(sim.clone(), topo, NodeId(0), cfg);
        let ticks = Rc::new(Cell::new(0u32));
        let ticks2 = Rc::clone(&ticks);
        m.start_timer(SimDuration::from_micros(10), move |_| {
            ticks2.set(ticks2.get() + 1);
        });
        m.spawn("t", Priority::Normal, None, |ctx| async move {
            ctx.compute(SimDuration::from_micros(35)).await;
        });
        sim.run();
        assert_eq!(ticks.get(), 3, "ticks at 10,20,30; stops once quiet");
    }

    #[test]
    fn compute_steal_lets_tasklet_interrupt() {
        let sim = Sim::new(1);
        let topo = Rc::new(Topology::single_node(1));
        let cfg = MarcelConfig {
            timer_tick: Some(SimDuration::from_micros(10)),
            timer_steals_from_compute: true,
            ..MarcelConfig::zero_cost()
        };
        let m = Marcel::new(sim.clone(), topo, NodeId(0), cfg);
        let ran_at = Rc::new(Cell::new(u64::MAX));
        let ran_at2 = Rc::clone(&ran_at);
        let sim2 = sim.clone();
        let tk = m.create_tasklet("t", move |run| {
            ran_at2.set(sim2.now().as_micros());
            run.charge(SimDuration::from_micros(2));
        });
        let m2 = m.clone();
        sim.schedule_in(SimDuration::from_micros(5), move |_| {
            m2.tasklet_schedule(tk, None);
        });
        let end = Rc::new(Cell::new(0u64));
        let end2 = Rc::clone(&end);
        m.spawn("busy", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(40)).await;
            end2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert_eq!(ran_at.get(), 10, "steals at the first tick boundary");
        assert_eq!(end.get(), 42, "compute extended by the stolen 2µs");
        assert_eq!(m.stats().compute_steals, 1);
    }

    #[test]
    fn sleep_releases_the_core() {
        let (sim, m) = setup(1);
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        {
            let order = Rc::clone(&order);
            m.spawn("sleeper", Priority::Normal, None, move |ctx| async move {
                ctx.sleep(SimDuration::from_micros(10)).await;
                order
                    .borrow_mut()
                    .push(("sleeper", ctx.marcel().sim().now().as_micros()));
            });
        }
        {
            let order = Rc::clone(&order);
            m.spawn("worker", Priority::Normal, None, move |ctx| async move {
                ctx.compute(SimDuration::from_micros(6)).await;
                order
                    .borrow_mut()
                    .push(("worker", ctx.marcel().sim().now().as_micros()));
            });
        }
        sim.run();
        // The worker ran during the sleeper's sleep on the single core.
        assert_eq!(
            *order.borrow(),
            vec![("worker", 6), ("sleeper", 10)],
            "sleep must release the core; compute would have serialized"
        );
    }

    #[test]
    fn join_helper_waits_for_child() {
        let (sim, m) = setup(2);
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        let child = {
            let order = Rc::clone(&order);
            m.spawn("child", Priority::Normal, None, move |ctx| async move {
                ctx.compute(SimDuration::from_micros(4)).await;
                order.borrow_mut().push("child");
            })
        };
        {
            let order = Rc::clone(&order);
            m.spawn("parent", Priority::Normal, None, move |ctx| async move {
                ctx.join(child).await;
                order.borrow_mut().push("parent");
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["child", "parent"]);
    }

    #[test]
    fn join_via_finished_trigger() {
        let (sim, m) = setup(2);
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        let child = {
            let order = Rc::clone(&order);
            m.spawn("child", Priority::Normal, None, move |ctx| async move {
                ctx.compute(SimDuration::from_micros(9)).await;
                order.borrow_mut().push("child");
            })
        };
        let fin = m.finished(child);
        {
            let order = Rc::clone(&order);
            m.spawn("parent", Priority::Normal, None, move |ctx| async move {
                ctx.block_until(&fin, false).await;
                order.borrow_mut().push("parent");
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["child", "parent"]);
    }
}
