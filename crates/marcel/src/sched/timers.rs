//! Periodic timers (the "timer interrupts" trigger of §3.1).

use super::Marcel;
use pm2_sim::SimDuration;
use std::cell::Cell;
use std::rc::Rc;

/// Identifier of a periodic timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) usize);

pub(crate) struct TimerRec {
    pub(crate) cancelled: Rc<Cell<bool>>,
}

impl Marcel {
    /// Starts a periodic timer firing `callback` every `period`.
    ///
    /// The timer stops automatically when all threads have finished (so
    /// that simulations terminate) or when cancelled.
    pub fn start_timer(
        &self,
        period: SimDuration,
        callback: impl Fn(&Marcel) + 'static,
    ) -> TimerId {
        assert!(!period.is_zero(), "timer period must be positive");
        let cancelled = Rc::new(Cell::new(false));
        let id = TimerId(self.inner.state.borrow_mut().timers.insert(TimerRec {
            cancelled: Rc::clone(&cancelled),
        }));
        let marcel = self.clone();
        let cb = Rc::new(callback);
        arm_timer(marcel, period, cb, cancelled);
        id
    }

    /// Cancels a periodic timer.
    pub fn cancel_timer(&self, id: TimerId) {
        if let Some(rec) = self.inner.state.borrow_mut().timers.remove(id.0) {
            rec.cancelled.set(true);
        }
    }
}

fn arm_timer(
    marcel: Marcel,
    period: SimDuration,
    cb: Rc<dyn Fn(&Marcel)>,
    cancelled: Rc<Cell<bool>>,
) {
    let sim = marcel.sim().clone();
    sim.schedule_in(period, move |_| {
        if cancelled.get() {
            return;
        }
        // Auto-stop when the node has gone quiet, so simulations terminate.
        if marcel.live_thread_count() == 0 && !marcel.has_pending_tasklet() {
            return;
        }
        marcel.inner.state.borrow_mut().stats.timer_ticks += 1;
        cb(&marcel);
        arm_timer(marcel.clone(), period, Rc::clone(&cb), cancelled.clone());
    });
}
