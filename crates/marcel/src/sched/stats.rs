//! Scheduler activity counters.

use super::Marcel;
use crate::policy::PopSource;

/// Scheduler activity counters (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Threads dispatched onto cores.
    pub dispatches: u64,
    /// Tasklet bodies executed.
    pub tasklet_runs: u64,
    /// Tasklet schedules that coalesced into a pending one.
    pub tasklet_coalesced: u64,
    /// Idle-hook sweep invocations.
    pub hook_sweeps: u64,
    /// Tasklet executions that stole cycles from a computing thread.
    pub compute_steals: u64,
    /// Timer callback firings.
    pub timer_ticks: u64,
    /// Dispatches served from the core's own or its socket's queue
    /// (cache-warm).
    pub local_dispatches: u64,
    /// Dispatches that stole a thread queued for another socket.
    pub cross_socket_steals: u64,
    /// Dispatches popped from the core's own strict-affinity queue.
    pub pop_core: u64,
    /// Dispatches popped from the core's own socket queue.
    pub pop_local_socket: u64,
    /// Dispatches popped from a node-wide queue.
    pub pop_node: u64,
    /// Dispatches stolen from another socket's queue.
    pub pop_steal: u64,
}

impl SchedStats {
    /// Tallies where a dispatch was popped from: the full locality mix
    /// (`pop_*`) plus the legacy local/steal split.
    pub(crate) fn note_pop(&mut self, src: PopSource) {
        match src {
            PopSource::Core => self.pop_core += 1,
            PopSource::LocalSocket => self.pop_local_socket += 1,
            PopSource::Node => self.pop_node += 1,
            PopSource::RemoteSocket => self.pop_steal += 1,
        }
        match src {
            PopSource::RemoteSocket => self.cross_socket_steals += 1,
            PopSource::Core | PopSource::LocalSocket => self.local_dispatches += 1,
            PopSource::Node => {}
        }
    }
}

pub(crate) fn bump_shard(v: &mut Vec<u64>, shard: u32) {
    let i = shard as usize;
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    v[i] += 1;
}

impl Marcel {
    /// Snapshot of the activity counters.
    pub fn stats(&self) -> SchedStats {
        self.inner.state.borrow().stats
    }

    /// Per-shard idle-hook work counts (index = shard named by
    /// [`crate::HookResult::WorkedOn`]; shards that never worked may be
    /// absent).
    pub fn hook_shard_work(&self) -> Vec<u64> {
        self.inner.state.borrow().hook_shard_work.clone()
    }

    /// Per-shard tasklet work counts (index = shard named by
    /// [`crate::TaskletRun::note_shard`]).
    pub fn tasklet_shard_work(&self) -> Vec<u64> {
        self.inner.state.borrow().tasklet_shard_work.clone()
    }
}
