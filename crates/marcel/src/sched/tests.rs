use super::*;
use crate::comm::CommStage;
use crate::policy::SchedPolicyKind;
use std::cell::Cell;

fn setup(cores: usize) -> (Sim, Marcel) {
    let sim = Sim::new(1);
    let topo = Rc::new(Topology::single_node(cores));
    let m = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::zero_cost());
    (sim, m)
}

fn setup_with_policy(cores: usize, policy: SchedPolicyKind) -> (Sim, Marcel) {
    let sim = Sim::new(1);
    let topo = Rc::new(Topology::single_node(cores));
    let cfg = MarcelConfig {
        policy,
        ..MarcelConfig::zero_cost()
    };
    let m = Marcel::new(sim.clone(), topo, NodeId(0), cfg);
    (sim, m)
}

#[test]
fn thread_computes_and_finishes() {
    let (sim, m) = setup(2);
    let done = Rc::new(Cell::new(0u64));
    let done2 = Rc::clone(&done);
    m.spawn("t", Priority::Normal, None, move |ctx| async move {
        ctx.compute(SimDuration::from_micros(20)).await;
        done2.set(ctx.marcel().sim().now().as_micros());
    });
    sim.run();
    assert_eq!(done.get(), 20);
    assert_eq!(m.live_thread_count(), 0);
    assert_eq!(m.stats().dispatches, 1);
}

#[test]
fn two_threads_on_two_cores_run_in_parallel() {
    let (sim, m) = setup(2);
    let t_end = Rc::new(Cell::new(0u64));
    for _ in 0..2 {
        let t_end = Rc::clone(&t_end);
        m.spawn("t", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(50)).await;
            t_end.set(t_end.get().max(ctx.marcel().sim().now().as_micros()));
        });
    }
    sim.run();
    assert_eq!(t_end.get(), 50, "both should finish at t=50 (parallel)");
}

#[test]
fn two_threads_on_one_core_serialize() {
    let (sim, m) = setup(1);
    let t_end = Rc::new(Cell::new(0u64));
    for _ in 0..2 {
        let t_end = Rc::clone(&t_end);
        m.spawn("t", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(50)).await;
            t_end.set(t_end.get().max(ctx.marcel().sim().now().as_micros()));
        });
    }
    sim.run();
    assert_eq!(t_end.get(), 100, "single core must serialize");
}

#[test]
fn affinity_pins_thread_to_core() {
    let (sim, m) = setup(2);
    let cores_seen = Rc::new(std::cell::RefCell::new(Vec::new()));
    for _ in 0..2 {
        let cores_seen = Rc::clone(&cores_seen);
        m.spawn(
            "pinned",
            Priority::Normal,
            Some(CoreId(1)),
            move |ctx| async move {
                cores_seen.borrow_mut().push(ctx.current_core().unwrap());
                ctx.compute(SimDuration::from_micros(10)).await;
            },
        );
    }
    sim.run();
    assert_eq!(*cores_seen.borrow(), vec![CoreId(1), CoreId(1)]);
    // Serialized on core 1 even though core 0 was free.
    assert_eq!(sim.now().as_micros(), 20);
}

#[test]
fn block_until_releases_core_for_other_work() {
    let (sim, m) = setup(1);
    let trig = Trigger::new();
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    {
        let trig = trig.clone();
        let order = Rc::clone(&order);
        m.spawn("waiter", Priority::Normal, None, move |ctx| async move {
            order.borrow_mut().push("wait-start");
            ctx.block_until(&trig, true).await;
            order.borrow_mut().push("wait-done");
        });
    }
    {
        let trig = trig.clone();
        let order = Rc::clone(&order);
        m.spawn("worker", Priority::Normal, None, move |ctx| async move {
            order.borrow_mut().push("work");
            ctx.compute(SimDuration::from_micros(5)).await;
            trig.fire();
        });
    }
    sim.run();
    assert_eq!(
        *order.borrow(),
        vec!["wait-start", "work", "wait-done"],
        "waiter must free the single core for the worker"
    );
    assert_eq!(sim.now().as_micros(), 5);
}

#[test]
fn block_until_fired_trigger_does_not_release() {
    let (sim, m) = setup(1);
    let trig = Trigger::new();
    trig.fire();
    let t = trig.clone();
    m.spawn("t", Priority::Normal, None, move |ctx| async move {
        ctx.block_until(&t, false).await;
        ctx.compute(SimDuration::from_micros(1)).await;
    });
    sim.run();
    assert_eq!(m.stats().dispatches, 1, "no re-dispatch should occur");
}

#[test]
fn park_unpark_with_permit() {
    let (sim, m) = setup(1);
    let hits = Rc::new(Cell::new(0));
    let hits2 = Rc::clone(&hits);
    let tid = m.spawn("p", Priority::Normal, None, move |ctx| async move {
        ctx.compute(SimDuration::from_micros(5)).await;
        // unpark arrived during compute: permit makes this immediate.
        ctx.park().await;
        hits2.set(1);
    });
    let m2 = m.clone();
    sim.schedule_in(SimDuration::from_micros(1), move |_| m2.unpark(tid));
    sim.run();
    assert_eq!(hits.get(), 1);
    assert_eq!(sim.now().as_micros(), 5);
}

#[test]
fn park_blocks_until_unpark() {
    let (sim, m) = setup(1);
    let woke_at = Rc::new(Cell::new(0u64));
    let woke_at2 = Rc::clone(&woke_at);
    let tid = m.spawn("p", Priority::Normal, None, move |ctx| async move {
        ctx.park().await;
        woke_at2.set(ctx.marcel().sim().now().as_micros());
    });
    let m2 = m.clone();
    sim.schedule_in(SimDuration::from_micros(42), move |_| m2.unpark(tid));
    sim.run();
    assert_eq!(woke_at.get(), 42);
}

#[test]
fn tasklet_runs_on_idle_core_and_charges_cost() {
    let (sim, m) = setup(2);
    let ran_at = Rc::new(Cell::new(0u64));
    let ran_at2 = Rc::clone(&ran_at);
    let sim2 = sim.clone();
    let tk = m.create_tasklet("t", move |run| {
        ran_at2.set(sim2.now().as_micros());
        run.charge(SimDuration::from_micros(7));
    });
    m.tasklet_schedule(tk, None);
    sim.run();
    assert_eq!(ran_at.get(), 0, "runs immediately on an idle core");
    assert_eq!(m.tasklet_runs(tk), 1);
}

#[test]
fn tasklet_coalesces() {
    let (sim, m) = setup(1);
    let tk = m.create_tasklet("t", |_| {});
    assert!(m.tasklet_schedule(tk, None));
    assert!(!m.tasklet_schedule(tk, None));
    sim.run();
    assert_eq!(m.tasklet_runs(tk), 1);
    assert_eq!(m.stats().tasklet_coalesced, 1);
}

#[test]
fn tasklet_waits_for_busy_cores() {
    // One core, one long-running thread: the tasklet only runs when the
    // thread finishes.
    let (sim, m) = setup(1);
    let ran_at = Rc::new(Cell::new(0u64));
    let ran_at2 = Rc::clone(&ran_at);
    let sim2 = sim.clone();
    let tk = m.create_tasklet("t", move |_| {
        ran_at2.set(sim2.now().as_micros());
    });
    let m2 = m.clone();
    m.spawn("busy", Priority::Normal, None, move |ctx| async move {
        m2.tasklet_schedule(tk, ctx.current_core());
        ctx.compute(SimDuration::from_micros(30)).await;
    });
    sim.run();
    assert_eq!(ran_at.get(), 30);
}

#[test]
fn disabled_tasklet_defers() {
    let (sim, m) = setup(1);
    let tk = m.create_tasklet("t", |_| {});
    m.tasklet_disable(tk);
    m.tasklet_schedule(tk, None);
    sim.run();
    assert_eq!(m.tasklet_runs(tk), 0);
    m.tasklet_enable(tk);
    sim.run();
    assert_eq!(m.tasklet_runs(tk), 1);
}

#[test]
fn tasklet_reschedule_from_body_runs_again() {
    let (sim, m) = setup(1);
    let count = Rc::new(Cell::new(0u32));
    let count2 = Rc::clone(&count);
    let tk = m.create_tasklet("t", move |run| {
        let c = count2.get() + 1;
        count2.set(c);
        run.charge(SimDuration::from_micros(1));
        if c < 3 {
            run.reschedule();
        }
    });
    m.tasklet_schedule(tk, None);
    sim.run();
    assert_eq!(count.get(), 3);
    assert_eq!(sim.now().as_micros(), 3);
}

#[test]
fn idle_hook_runs_when_core_idle() {
    let (sim, m) = setup(1);
    let polls = Rc::new(Cell::new(0u32));
    let polls2 = Rc::clone(&polls);
    m.register_idle_hook(move |_, _| {
        let c = polls2.get();
        if c < 5 {
            polls2.set(c + 1);
            HookResult::Worked(SimDuration::from_micros(1))
        } else {
            HookResult::Nothing
        }
    });
    m.spawn("t", Priority::Normal, None, |ctx| async move {
        ctx.compute(SimDuration::from_micros(2)).await;
    });
    sim.run();
    assert_eq!(polls.get(), 5, "hook should poll after the thread ends");
}

#[test]
fn armed_hook_keeps_polling_until_disarmed() {
    let (sim, m) = setup(1);
    let armed = Rc::new(Cell::new(true));
    let polls = Rc::new(Cell::new(0u32));
    {
        let armed = Rc::clone(&armed);
        let polls = Rc::clone(&polls);
        m.register_idle_hook(move |_, _| {
            if armed.get() {
                polls.set(polls.get() + 1);
                HookResult::Armed
            } else {
                HookResult::Nothing
            }
        });
    }
    // A thread must exist once so the core wakes up at least once.
    m.spawn("t", Priority::Normal, None, |_ctx| async move {});
    let armed2 = Rc::clone(&armed);
    sim.schedule_in(SimDuration::from_micros(10), move |_| armed2.set(false));
    sim.run();
    assert!(
        polls.get() >= 10,
        "polled every 0.1µs for 10µs: {}",
        polls.get()
    );
    assert!(sim.now().as_micros() >= 10);
}

#[test]
fn priorities_dispatch_high_first() {
    let (sim, m) = setup(1);
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    // Occupy the core so the next two spawns queue up.
    m.spawn("first", Priority::Normal, None, |ctx| async move {
        ctx.compute(SimDuration::from_micros(1)).await;
    });
    for (name, prio) in [("low", Priority::Low), ("high", Priority::High)] {
        let order = Rc::clone(&order);
        m.spawn(name, prio, None, move |ctx| async move {
            order.borrow_mut().push(name);
            ctx.compute(SimDuration::from_micros(1)).await;
        });
    }
    sim.run();
    assert_eq!(*order.borrow(), vec!["high", "low"]);
}

#[test]
fn timer_fires_periodically_and_stops_when_quiet() {
    let sim = Sim::new(1);
    let topo = Rc::new(Topology::single_node(1));
    let cfg = MarcelConfig {
        timer_tick: Some(SimDuration::from_micros(10)),
        ..MarcelConfig::zero_cost()
    };
    let m = Marcel::new(sim.clone(), topo, NodeId(0), cfg);
    let ticks = Rc::new(Cell::new(0u32));
    let ticks2 = Rc::clone(&ticks);
    m.start_timer(SimDuration::from_micros(10), move |_| {
        ticks2.set(ticks2.get() + 1);
    });
    m.spawn("t", Priority::Normal, None, |ctx| async move {
        ctx.compute(SimDuration::from_micros(35)).await;
    });
    sim.run();
    assert_eq!(ticks.get(), 3, "ticks at 10,20,30; stops once quiet");
}

#[test]
fn compute_steal_lets_tasklet_interrupt() {
    let sim = Sim::new(1);
    let topo = Rc::new(Topology::single_node(1));
    let cfg = MarcelConfig {
        timer_tick: Some(SimDuration::from_micros(10)),
        timer_steals_from_compute: true,
        ..MarcelConfig::zero_cost()
    };
    let m = Marcel::new(sim.clone(), topo, NodeId(0), cfg);
    let ran_at = Rc::new(Cell::new(u64::MAX));
    let ran_at2 = Rc::clone(&ran_at);
    let sim2 = sim.clone();
    let tk = m.create_tasklet("t", move |run| {
        ran_at2.set(sim2.now().as_micros());
        run.charge(SimDuration::from_micros(2));
    });
    let m2 = m.clone();
    sim.schedule_in(SimDuration::from_micros(5), move |_| {
        m2.tasklet_schedule(tk, None);
    });
    let end = Rc::new(Cell::new(0u64));
    let end2 = Rc::clone(&end);
    m.spawn("busy", Priority::Normal, None, move |ctx| async move {
        ctx.compute(SimDuration::from_micros(40)).await;
        end2.set(ctx.marcel().sim().now().as_micros());
    });
    sim.run();
    assert_eq!(ran_at.get(), 10, "steals at the first tick boundary");
    assert_eq!(end.get(), 42, "compute extended by the stolen 2µs");
    assert_eq!(m.stats().compute_steals, 1);
}

#[test]
fn sleep_releases_the_core() {
    let (sim, m) = setup(1);
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    {
        let order = Rc::clone(&order);
        m.spawn("sleeper", Priority::Normal, None, move |ctx| async move {
            ctx.sleep(SimDuration::from_micros(10)).await;
            order
                .borrow_mut()
                .push(("sleeper", ctx.marcel().sim().now().as_micros()));
        });
    }
    {
        let order = Rc::clone(&order);
        m.spawn("worker", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(6)).await;
            order
                .borrow_mut()
                .push(("worker", ctx.marcel().sim().now().as_micros()));
        });
    }
    sim.run();
    // The worker ran during the sleeper's sleep on the single core.
    assert_eq!(
        *order.borrow(),
        vec![("worker", 6), ("sleeper", 10)],
        "sleep must release the core; compute would have serialized"
    );
}

#[test]
fn join_helper_waits_for_child() {
    let (sim, m) = setup(2);
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    let child = {
        let order = Rc::clone(&order);
        m.spawn("child", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(4)).await;
            order.borrow_mut().push("child");
        })
    };
    {
        let order = Rc::clone(&order);
        m.spawn("parent", Priority::Normal, None, move |ctx| async move {
            ctx.join(child).await;
            order.borrow_mut().push("parent");
        });
    }
    sim.run();
    assert_eq!(*order.borrow(), vec!["child", "parent"]);
}

#[test]
fn join_via_finished_trigger() {
    let (sim, m) = setup(2);
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    let child = {
        let order = Rc::clone(&order);
        m.spawn("child", Priority::Normal, None, move |ctx| async move {
            ctx.compute(SimDuration::from_micros(9)).await;
            order.borrow_mut().push("child");
        })
    };
    let fin = m.finished(child);
    {
        let order = Rc::clone(&order);
        m.spawn("parent", Priority::Normal, None, move |ctx| async move {
            ctx.block_until(&fin, false).await;
            order.borrow_mut().push("parent");
        });
    }
    sim.run();
    assert_eq!(*order.borrow(), vec!["child", "parent"]);
}

// ----- pluggable policies --------------------------------------------------

#[test]
fn policy_name_reflects_config() {
    for kind in SchedPolicyKind::all() {
        let (_sim, m) = setup_with_policy(2, kind);
        assert_eq!(m.policy_name(), kind.name());
    }
}

#[test]
fn fifo_policy_dispatches_in_arrival_order() {
    // Same workload as `priorities_dispatch_high_first`, opposite outcome:
    // fifo ignores priority, so "low" (spawned first) runs first.
    let (sim, m) = setup_with_policy(1, SchedPolicyKind::Fifo);
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    m.spawn("first", Priority::Normal, None, |ctx| async move {
        ctx.compute(SimDuration::from_micros(1)).await;
    });
    for (name, prio) in [("low", Priority::Low), ("high", Priority::High)] {
        let order = Rc::clone(&order);
        m.spawn(name, prio, None, move |ctx| async move {
            order.borrow_mut().push(name);
            ctx.compute(SimDuration::from_micros(1)).await;
        });
    }
    sim.run();
    assert_eq!(*order.borrow(), vec!["low", "high"]);
}

#[test]
fn all_policies_run_the_basic_workloads() {
    for kind in SchedPolicyKind::all() {
        // Parallelism on two cores.
        let (sim, m) = setup_with_policy(2, kind);
        let t_end = Rc::new(Cell::new(0u64));
        for _ in 0..2 {
            let t_end = Rc::clone(&t_end);
            m.spawn("t", Priority::Normal, None, move |ctx| async move {
                ctx.compute(SimDuration::from_micros(50)).await;
                t_end.set(t_end.get().max(ctx.marcel().sim().now().as_micros()));
            });
        }
        sim.run();
        assert_eq!(t_end.get(), 50, "{}: parallel on two cores", kind.name());
        assert_eq!(m.live_thread_count(), 0, "{}: all finish", kind.name());

        // Strict affinity serializes even with a free core.
        let (sim, m) = setup_with_policy(2, kind);
        for _ in 0..2 {
            m.spawn(
                "pinned",
                Priority::Normal,
                Some(CoreId(1)),
                |ctx| async move {
                    assert_eq!(ctx.current_core(), Some(CoreId(1)));
                    ctx.compute(SimDuration::from_micros(10)).await;
                },
            );
        }
        sim.run();
        assert_eq!(
            sim.now().as_micros(),
            20,
            "{}: affinity honored",
            kind.name()
        );

        // Blocking releases the core.
        let (sim, m) = setup_with_policy(1, kind);
        let trig = Trigger::new();
        let done = Rc::new(Cell::new(false));
        {
            let trig = trig.clone();
            let done = Rc::clone(&done);
            m.spawn("waiter", Priority::Normal, None, move |ctx| async move {
                ctx.block_until(&trig, true).await;
                done.set(true);
            });
        }
        {
            let trig = trig.clone();
            m.spawn("worker", Priority::Normal, None, move |ctx| async move {
                ctx.compute(SimDuration::from_micros(5)).await;
                trig.fire();
            });
        }
        sim.run();
        assert!(
            done.get(),
            "{}: blocked thread woken and finished",
            kind.name()
        );
    }
}

#[test]
fn vruntime_policy_favors_high_priority_share() {
    // One core; a Low thread arrives first, a High thread second, both
    // needing 3×10µs slices with yields in between. Under vruntime the
    // High thread is charged 4× less per slice, so after Low's first
    // slice the High thread runs its remaining slices back-to-back.
    let (sim, m) = setup_with_policy(1, SchedPolicyKind::Vruntime);
    let ends = Rc::new(std::cell::RefCell::new(Vec::new()));
    for (name, prio) in [("low", Priority::Low), ("high", Priority::High)] {
        let ends = Rc::clone(&ends);
        m.spawn(name, prio, None, move |ctx| async move {
            for _ in 0..3 {
                ctx.compute(SimDuration::from_micros(10)).await;
                ctx.yield_now().await;
            }
            ends.borrow_mut()
                .push((name, ctx.marcel().sim().now().as_micros()));
        });
    }
    sim.run();
    let ends = ends.borrow();
    let high_end = ends.iter().find(|(n, _)| *n == "high").unwrap().1;
    let low_end = ends.iter().find(|(n, _)| *n == "low").unwrap().1;
    assert!(
        high_end < low_end,
        "high must finish first (high={high_end}µs, low={low_end}µs)"
    );
    assert_eq!(high_end.max(low_end), 60, "single core: 6 slices total");
}

#[test]
fn comm_aware_policy_boosts_near_completion_wakeups() {
    // Single core. Two threads block on triggers; a busy thread occupies
    // the core. Both triggers fire non-urgently while the core is busy —
    // "slow" first, then "xfer". Arrival order (and fifo/hier tie-break)
    // would run "slow" first; the comm policy sees that "xfer" waits on a
    // request already in its transfer stage and runs it first.
    let (sim, m) = setup_with_policy(1, SchedPolicyKind::CommAware);
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    let t_slow = Trigger::new();
    let t_xfer = Trigger::new();
    let mut ids = Vec::new();
    for (name, trig) in [("slow", t_slow.clone()), ("xfer", t_xfer.clone())] {
        let order = Rc::clone(&order);
        ids.push(
            m.spawn(name, Priority::Normal, None, move |ctx| async move {
                ctx.block_until(&trig, false).await;
                order.borrow_mut().push(name);
                ctx.compute(SimDuration::from_micros(1)).await;
            }),
        );
    }
    m.spawn("busy", Priority::Normal, None, |ctx| async move {
        ctx.compute(SimDuration::from_micros(10)).await;
    });
    // "xfer" waits on request 7, whose rendezvous data is already flowing.
    m.comm_wait_begin(ids[1], 7);
    m.note_req_stage(7, CommStage::Transfer);
    sim.schedule_in(SimDuration::from_micros(2), move |_| {
        t_slow.fire();
        t_xfer.fire();
    });
    sim.run();
    assert_eq!(
        *order.borrow(),
        vec!["xfer", "slow"],
        "near-completion waiter must jump the queue"
    );
}

#[test]
fn custom_policy_via_new_with_policy() {
    let sim = Sim::new(1);
    let topo = Rc::new(Topology::single_node(2));
    let policy = SchedPolicyKind::Fifo.build(2, 1);
    let m = Marcel::new_with_policy(
        sim.clone(),
        topo,
        NodeId(0),
        MarcelConfig::zero_cost(),
        policy,
    );
    assert_eq!(m.policy_name(), "fifo");
    let done = Rc::new(Cell::new(false));
    let done2 = Rc::clone(&done);
    m.spawn("t", Priority::Normal, None, move |ctx| async move {
        ctx.compute(SimDuration::from_micros(1)).await;
        done2.set(true);
    });
    sim.run();
    assert!(done.get());
}

#[test]
fn stats_track_pop_locality_mix() {
    let (sim, m) = setup(2);
    for _ in 0..4 {
        m.spawn("t", Priority::Normal, None, |ctx| async move {
            ctx.compute(SimDuration::from_micros(5)).await;
        });
    }
    m.spawn(
        "pinned",
        Priority::Normal,
        Some(CoreId(0)),
        |ctx| async move {
            ctx.compute(SimDuration::from_micros(5)).await;
        },
    );
    sim.run();
    let s = m.stats();
    assert_eq!(s.dispatches, 5);
    assert_eq!(
        s.pop_core + s.pop_local_socket + s.pop_node + s.pop_steal,
        s.dispatches,
        "pop sources partition the dispatches"
    );
    assert_eq!(s.pop_core, 1, "one strict-affinity dispatch");
    assert_eq!(
        s.local_dispatches,
        s.pop_core + s.pop_local_socket,
        "legacy counter = core + local-socket"
    );
    assert_eq!(s.cross_socket_steals, s.pop_steal);
}
