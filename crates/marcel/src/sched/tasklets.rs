//! Tasklet scheduling and execution (PIOMAN's deferred-work vector).

use super::{Marcel, State};
use crate::sched::stats::bump_shard;
use crate::tasklet::{TaskletId, TaskletRec, TaskletRun};
use crate::thread::ThreadId;
use pm2_sim::obs::EventKind;
use pm2_sim::trace::Category;
use pm2_sim::SimDuration;
use pm2_topo::CoreId;

impl Marcel {
    /// Registers a tasklet; its body reports consumed CPU time through the
    /// [`TaskletRun`] it receives.
    pub fn create_tasklet(
        &self,
        name: impl Into<String>,
        body: impl FnMut(&mut TaskletRun) + 'static,
    ) -> TaskletId {
        let mut st = self.inner.state.borrow_mut();
        TaskletId(st.tasklets.insert(TaskletRec {
            body: Some(Box::new(body)),
            scheduled: false,
            running: false,
            disabled: 0,
            origin: None,
            runs: 0,
            name: name.into(),
        }))
    }

    /// Schedules a tasklet for execution; coalesces if already scheduled.
    ///
    /// `from` is the core requesting the work (used to price the cross-CPU
    /// invocation); `None` means "no particular core" (e.g. scheduled from
    /// a timer).
    ///
    /// Returns `true` if this call enqueued it.
    pub fn tasklet_schedule(&self, tasklet: TaskletId, from: Option<CoreId>) -> bool {
        let enqueued = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.tasklets.get_mut(tasklet.0).expect("unknown tasklet");
            if rec.scheduled {
                st.stats.tasklet_coalesced += 1;
                false
            } else {
                rec.scheduled = true;
                rec.origin = from;
                st.tasklet_queue.push_back(tasklet);
                true
            }
        };
        if enqueued {
            self.trace(Category::Tasklet, || format!("schedule {tasklet:?}"));
            self.kick_idle_near(from);
        }
        enqueued
    }

    /// Forbids execution of a tasklet (nestable).
    pub fn tasklet_disable(&self, tasklet: TaskletId) {
        let mut st = self.inner.state.borrow_mut();
        st.tasklets
            .get_mut(tasklet.0)
            .expect("unknown tasklet")
            .disabled += 1;
    }

    /// Re-allows execution of a tasklet.
    ///
    /// # Panics
    /// Panics on unbalanced enable.
    pub fn tasklet_enable(&self, tasklet: TaskletId) {
        {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.tasklets.get_mut(tasklet.0).expect("unknown tasklet");
            assert!(rec.disabled > 0, "tasklet_enable without disable");
            rec.disabled -= 1;
        }
        self.kick_one_idle();
    }

    /// Number of executions of a tasklet so far.
    pub fn tasklet_runs(&self, tasklet: TaskletId) -> u64 {
        self.inner
            .state
            .borrow()
            .tasklets
            .get(tasklet.0)
            .expect("unknown tasklet")
            .runs
    }

    /// True if any enabled tasklet is waiting to run.
    pub fn has_pending_tasklet(&self) -> bool {
        let st = self.inner.state.borrow();
        st.tasklet_queue.iter().any(|t| {
            st.tasklets
                .get(t.0)
                .map(|r| r.disabled == 0 && !r.running)
                .unwrap_or(false)
        })
    }

    /// Pops the next runnable tasklet id, skipping disabled/running ones.
    pub(crate) fn pop_ready_tasklet(st: &mut State) -> Option<TaskletId> {
        let mut scanned = 0;
        let len = st.tasklet_queue.len();
        while scanned < len {
            let id = st.tasklet_queue.pop_front()?;
            let rec = st.tasklets.get(id.0).expect("queued tasklet missing");
            if rec.disabled == 0 && !rec.running {
                return Some(id);
            }
            st.tasklet_queue.push_back(id);
            scanned += 1;
        }
        None
    }

    /// Claims a tasklet for execution on `on` (sets the RUN bit) and
    /// returns the invocation cost: the cross-CPU notification penalty if
    /// the scheduling core differs from the executing one (the ≈2 µs the
    /// paper measures in §4.1).
    pub(crate) fn claim_tasklet(&self, id: TaskletId, on: CoreId) -> SimDuration {
        let mut st = self.inner.state.borrow_mut();
        let cfg = &self.inner.cfg;
        let rec = st.tasklets.get_mut(id.0).expect("unknown tasklet");
        debug_assert!(!rec.running, "claiming a running tasklet");
        rec.running = true;
        match rec.origin {
            None => cfg.tasklet_invoke_local,
            Some(o) => match self.inner.topo.distance(o, on) {
                pm2_topo::Distance::Same => cfg.tasklet_invoke_local,
                pm2_topo::Distance::SameSocket => cfg.tasklet_invoke_same_socket,
                _ => cfg.tasklet_invoke_remote,
            },
        }
    }

    /// Runs a claimed tasklet's body; returns the CPU cost it charged.
    ///
    /// The invocation delay has already elapsed by the time this runs, so
    /// the body's side effects (NIC submissions…) happen at the right
    /// virtual instant.
    pub(crate) fn execute_tasklet_body(
        &self,
        id: TaskletId,
        on: CoreId,
        stolen: bool,
    ) -> SimDuration {
        let (mut body, name) = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.tasklets.get_mut(id.0).expect("unknown tasklet");
            rec.scheduled = false;
            (
                rec.body.take().expect("tasklet body in use"),
                rec.name.clone(),
            )
        };
        let mut run = TaskletRun::new(on);
        body(&mut run);
        let (charged, resched, shard) = run.take_outcome();
        {
            let mut st = self.inner.state.borrow_mut();
            st.stats.tasklet_runs += 1;
            if stolen {
                st.stats.compute_steals += 1;
            }
            if let Some(s) = shard {
                bump_shard(&mut st.tasklet_shard_work, s);
            }
            let rec = st.tasklets.get_mut(id.0).expect("unknown tasklet");
            rec.body = Some(body);
            rec.running = false;
            rec.runs += 1;
        }
        if resched {
            self.tasklet_schedule(id, Some(on));
        }
        self.inner.sim.obs().emit(
            self.inner.sim.now(),
            Some(self.node().0),
            EventKind::TaskletRun {
                tasklet: id.0 as u64,
                core: on.0,
                shard: shard.map(|s| s as usize),
                cost: charged.as_nanos(),
            },
        );
        self.trace(Category::Tasklet, || {
            format!("ran {name} ({id:?}) on {on} cost={charged}")
        });
        charged
    }

    /// Lets a computing thread donate cycles to one pending tasklet.
    /// Returns the CPU time consumed (zero if nothing was pending).
    pub(crate) fn steal_one_tasklet(&self, thread: ThreadId) -> SimDuration {
        let core = match self.core_of(thread) {
            Some(c) => c,
            None => return SimDuration::ZERO,
        };
        let next = {
            let mut st = self.inner.state.borrow_mut();
            Self::pop_ready_tasklet(&mut st)
        };
        match next {
            Some(id) => {
                // The steal happens inside the thread's compute window, so
                // invocation and body run back-to-back.
                let invoke = self.claim_tasklet(id, core);
                invoke + self.execute_tasklet_body(id, core, true)
            }
            None => SimDuration::ZERO,
        }
    }

    pub(crate) fn compute_steal_config(&self) -> Option<SimDuration> {
        if self.inner.cfg.timer_steals_from_compute {
            self.inner.cfg.timer_tick
        } else {
            None
        }
    }
}
