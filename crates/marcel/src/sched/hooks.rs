//! Idle hooks: the polling sites PIOMAN attaches to otherwise-idle cores
//! ("leaving a core idle boils down to a busy waiting", §3.2).

use super::Marcel;
use crate::sched::stats::bump_shard;
use pm2_sim::obs::EventKind;
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::CoreId;
use std::rc::Rc;

/// Result of one idle-hook invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookResult {
    /// Nothing to do and nothing expected: the core may truly sleep.
    Nothing,
    /// Nothing to do right now, but events are being awaited: keep polling
    /// (the "busy waiting" of §3.2).
    Armed,
    /// Work was performed, consuming the given CPU time; re-check
    /// immediately afterwards.
    Worked(SimDuration),
    /// Like [`HookResult::Worked`], additionally naming which shard of
    /// the hook's backend did the work (e.g. which PIOMAN progress
    /// driver); Marcel tallies per-shard hook work for it.
    WorkedOn {
        /// CPU time the work consumed.
        cost: SimDuration,
        /// Shard index the work is attributed to.
        shard: u32,
    },
}

/// A registered idle hook (shared so a sweep can run hooks unborrowed).
pub(crate) type IdleHook = Rc<dyn Fn(&Marcel, CoreId) -> HookResult>;

impl Marcel {
    /// Registers an idle hook, called whenever a core runs out of work.
    pub fn register_idle_hook(&self, hook: impl Fn(&Marcel, CoreId) -> HookResult + 'static) {
        self.inner.state.borrow_mut().hooks.push(Rc::new(hook));
    }

    /// Runs every registered hook once on `core`; returns the total CPU
    /// cost charged and whether any hook stayed armed.
    pub(crate) fn hook_sweep(&self, core: CoreId, now: SimTime) -> (SimDuration, bool) {
        let hooks: Vec<IdleHook> = {
            let mut st = self.inner.state.borrow_mut();
            st.stats.hook_sweeps += 1;
            st.hooks.clone()
        };
        let mut cost = SimDuration::ZERO;
        let mut armed = false;
        for hook in hooks {
            match hook(self, core) {
                HookResult::Nothing => {}
                HookResult::Armed => armed = true,
                HookResult::Worked(c) => {
                    armed = true;
                    cost += c;
                    self.inner.sim.obs().emit(
                        now,
                        Some(self.node().0),
                        EventKind::HookWork {
                            core: core.0,
                            shard: None,
                            cost: c.as_nanos(),
                        },
                    );
                }
                HookResult::WorkedOn { cost: c, shard } => {
                    armed = true;
                    cost += c;
                    let mut st = self.inner.state.borrow_mut();
                    bump_shard(&mut st.hook_shard_work, shard);
                    drop(st);
                    self.inner.sim.obs().emit(
                        now,
                        Some(self.node().0),
                        EventKind::HookWork {
                            core: core.0,
                            shard: Some(shard as usize),
                            cost: c.as_nanos(),
                        },
                    );
                }
            }
        }
        (cost, armed)
    }
}
