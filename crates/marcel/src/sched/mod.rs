//! The scheduler engine: cores, dispatch machinery, and the glue that
//! drives a pluggable [`SchedPolicy`].
//!
//! The engine owns what is *mechanism* — core occupancy, tasklet
//! invocation pricing, idle-hook sweeps, timers, the run-event
//! deduplication — and delegates every *placement* decision (which queue,
//! which core to kick, which thread to run next) to the policy selected
//! in [`MarcelConfig::policy`]. Submodules:
//!
//! * [`threads`] — thread lifecycle (spawn, block/wake, yield, finish);
//! * [`tasklets`] — tasklet scheduling and execution;
//! * [`hooks`] — idle hooks (PIOMAN's polling sites);
//! * [`timers`] — periodic timers;
//! * [`stats`] — activity counters.

mod hooks;
mod stats;
mod tasklets;
#[cfg(test)]
mod tests;
mod threads;
mod timers;

pub use hooks::HookResult;
pub use stats::SchedStats;
pub use timers::TimerId;

use crate::comm::CommSignals;
use crate::config::MarcelConfig;
use crate::policy::{KickHint, PolicyCtx, SchedPolicy, ThreadView};
use crate::tasklet::{TaskletId, TaskletRec};
use crate::thread::{Priority, ThreadId};
use hooks::IdleHook;
use pm2_sim::trace::Category;
use pm2_sim::{Sim, SimDuration, SimTime, Slab, TimerHandle, Trigger};
use pm2_topo::{CoreId, NodeId, Topology};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::task::Waker;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    Ready,
    Running(CoreId),
    Blocked,
    Finished,
}

pub(crate) struct ThreadRec {
    pub(crate) state: TState,
    pub(crate) priority: Priority,
    pub(crate) affinity: Option<CoreId>,
    /// Core the thread last ran on (for cache-affine wake placement).
    pub(crate) last_core: Option<CoreId>,
    pub(crate) dispatch_waker: Option<Waker>,
    pub(crate) finished: Trigger,
    pub(crate) park_trigger: Option<Trigger>,
    pub(crate) unpark_permit: bool,
    pub(crate) name: String,
}

pub(crate) struct Core {
    pub(crate) id: CoreId,
    pub(crate) current: Option<ThreadId>,
    /// Occupancy from tasklet/hook work (threads occupy via `current`).
    pub(crate) busy_until: SimTime,
    /// Earliest pending `run_core` event, for deduplication.
    pub(crate) scheduled_run: Option<(SimTime, TimerHandle)>,
}

pub(crate) struct State {
    pub(crate) cores: Vec<Core>,
    pub(crate) threads: Slab<ThreadRec>,
    pub(crate) tasklets: Slab<TaskletRec>,
    pub(crate) tasklet_queue: VecDeque<TaskletId>,
    pub(crate) policy: Box<dyn SchedPolicy>,
    pub(crate) comm: CommSignals,
    pub(crate) hooks: Vec<IdleHook>,
    pub(crate) timers: Slab<timers::TimerRec>,
    pub(crate) stats: SchedStats,
    /// Per-shard counts of idle-hook work events
    /// ([`HookResult::WorkedOn`]), indexed by shard.
    pub(crate) hook_shard_work: Vec<u64>,
    /// Per-shard counts of tasklet work events
    /// ([`crate::TaskletRun::note_shard`]), indexed by shard.
    pub(crate) tasklet_shard_work: Vec<u64>,
}

/// Splits the state into the policy and the read-only view it may consult
/// (they borrow disjoint fields, so both live at once).
pub(crate) fn policy_split<'a>(
    st: &'a mut State,
    now: SimTime,
    sockets: usize,
    cores_per_socket: usize,
) -> (&'a mut dyn SchedPolicy, PolicyCtx<'a>) {
    let pending = st.tasklet_queue.len();
    let State {
        policy,
        cores,
        comm,
        ..
    } = st;
    let ctx = PolicyCtx::new(now, cores, comm, sockets, cores_per_socket, pending);
    (policy.as_mut(), ctx)
}

pub(crate) struct Inner {
    pub(crate) sim: Sim,
    pub(crate) topo: Rc<Topology>,
    pub(crate) node: NodeId,
    pub(crate) cfg: MarcelConfig,
    pub(crate) state: RefCell<State>,
}

/// Handle to one node's scheduler; cheap to clone.
///
/// # Example
/// ```
/// use pm2_marcel::{Marcel, MarcelConfig, Priority};
/// use pm2_sim::{Sim, SimDuration};
/// use pm2_topo::{NodeId, Topology};
/// use std::rc::Rc;
///
/// let sim = Sim::new(0);
/// let topo = Rc::new(Topology::single_node(4));
/// let marcel = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::default());
/// marcel.spawn("worker", Priority::Normal, None, |ctx| async move {
///     ctx.compute(SimDuration::from_micros(10)).await;
/// });
/// sim.run();
/// assert_eq!(marcel.stats().dispatches, 1);
/// ```
#[derive(Clone)]
pub struct Marcel {
    pub(crate) inner: Rc<Inner>,
}

impl Marcel {
    /// Creates a scheduler owning the cores of `node` in `topo`, driven by
    /// the policy named in `cfg.policy`.
    pub fn new(sim: Sim, topo: Rc<Topology>, node: NodeId, cfg: MarcelConfig) -> Marcel {
        let policy = cfg
            .policy
            .build(topo.cores_per_node(), topo.sockets_per_node());
        Self::new_with_policy(sim, topo, node, cfg, policy)
    }

    /// Like [`Marcel::new`], with a caller-built (possibly custom) policy.
    pub fn new_with_policy(
        sim: Sim,
        topo: Rc<Topology>,
        node: NodeId,
        cfg: MarcelConfig,
        policy: Box<dyn SchedPolicy>,
    ) -> Marcel {
        let cores = topo
            .cores_of(node)
            .map(|id| Core {
                id,
                current: None,
                busy_until: SimTime::ZERO,
                scheduled_run: None,
            })
            .collect();
        Marcel {
            inner: Rc::new(Inner {
                sim,
                topo,
                node,
                cfg,
                state: RefCell::new(State {
                    cores,
                    threads: Slab::new(),
                    tasklets: Slab::new(),
                    tasklet_queue: VecDeque::new(),
                    policy,
                    comm: CommSignals::default(),
                    hooks: Vec::new(),
                    timers: Slab::new(),
                    stats: SchedStats::default(),
                    hook_shard_work: Vec::new(),
                    tasklet_shard_work: Vec::new(),
                }),
            }),
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// The node this scheduler manages.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Rc<Topology> {
        &self.inner.topo
    }

    /// The cost model in use.
    pub fn config(&self) -> &MarcelConfig {
        &self.inner.cfg
    }

    /// Name of the scheduling policy driving this node.
    pub fn policy_name(&self) -> &'static str {
        self.inner.state.borrow().policy.name()
    }

    pub(crate) fn local(&self, core: CoreId) -> usize {
        debug_assert_eq!(self.inner.topo.node_of(core), self.inner.node);
        self.inner.topo.local_index(core)
    }

    /// Global id of a node-local core index.
    pub(crate) fn core_at(&self, local: usize) -> CoreId {
        self.inner.topo.core_on(self.inner.node, local)
    }

    /// Socket/core shape handed to [`PolicyCtx`].
    pub(crate) fn dims(&self) -> (usize, usize) {
        (
            self.inner.topo.sockets_per_node(),
            self.inner.topo.cores_per_socket(),
        )
    }

    /// Builds the policy's view of a thread (local core indices).
    pub(crate) fn thread_view(&self, id: ThreadId, rec: &ThreadRec) -> ThreadView {
        ThreadView {
            id,
            priority: rec.priority,
            affinity: rec.affinity.map(|c| self.local(c)),
            last_core: rec.last_core.map(|c| self.local(c)),
        }
    }

    /// Applies a policy's [`KickHint`].
    pub(crate) fn apply_kick(&self, hint: KickHint) {
        match hint {
            KickHint::Core(l) => self.schedule_run(self.core_at(l), SimDuration::ZERO),
            KickHint::Near(l) => self.kick_idle_near(Some(self.core_at(l))),
            KickHint::AnyIdle => self.kick_one_idle(),
            KickHint::None => {}
        }
    }

    // ----- core engine ----------------------------------------------------

    /// Nudges every idle core to look for work now (used by PIOMAN when new
    /// requests arrive).
    pub fn kick_all_idle(&self) {
        let now = self.inner.sim.now();
        let idle: Vec<CoreId> = self
            .inner
            .state
            .borrow()
            .cores
            .iter()
            .filter(|c| c.current.is_none() && c.busy_until <= now)
            .map(|c| c.id)
            .collect();
        for c in idle {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    pub(crate) fn kick_one_idle(&self) {
        let now = self.inner.sim.now();
        let idle = {
            let st = self.inner.state.borrow();
            let is_idle = |c: &Core| c.current.is_none() && c.busy_until <= now;
            // Prefer an idle core with no run already pending so that two
            // ready threads wake two distinct cores.
            st.cores
                .iter()
                .find(|c| is_idle(c) && c.scheduled_run.is_none())
                .or_else(|| st.cores.iter().find(|c| is_idle(c)))
                .map(|c| c.id)
        };
        if let Some(c) = idle {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    /// Kicks the idle core nearest to `origin` (or any idle core).
    pub(crate) fn kick_idle_near(&self, origin: Option<CoreId>) {
        let now = self.inner.sim.now();
        let chosen = {
            let st = self.inner.state.borrow();
            let is_idle = |c: &Core| c.current.is_none() && c.busy_until <= now;
            let fallback = || {
                st.cores
                    .iter()
                    .find(|c| is_idle(c) && c.scheduled_run.is_none())
                    .or_else(|| st.cores.iter().find(|c| is_idle(c)))
                    .map(|c| c.id)
            };
            match origin {
                Some(o) => self
                    .inner
                    .topo
                    .neighbours_by_distance(o)
                    .into_iter()
                    .find(|&cand| {
                        let local = self.inner.topo.local_index(cand);
                        let c = &st.cores[local];
                        is_idle(c) && c.scheduled_run.is_none()
                    })
                    .or_else(fallback),
                None => fallback(),
            }
        };
        if let Some(c) = chosen {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    /// Schedules `run_core(core)` after `delay`, deduplicating against an
    /// already-pending earlier or equal run.
    pub(crate) fn schedule_run(&self, core: CoreId, delay: SimDuration) {
        let at = self.inner.sim.now() + delay;
        let local = self.local(core);
        {
            let mut st = self.inner.state.borrow_mut();
            let slot = &mut st.cores[local].scheduled_run;
            if let Some((t, _)) = slot {
                if *t <= at {
                    return; // an earlier (or same-time) run is already pending
                }
                if let Some((_, h)) = slot.take() {
                    h.cancel();
                }
            }
            let marcel = self.clone();
            let handle = self.inner.sim.schedule_at(at, move |_| {
                marcel.inner.state.borrow_mut().cores[local].scheduled_run = None;
                marcel.run_core(core);
            });
            *slot = Some((at, handle));
        }
    }

    /// The per-core work loop: tasklets first, then threads, then idle
    /// hooks.
    pub(crate) fn run_core(&self, core: CoreId) {
        let local = self.local(core);
        {
            let mut st = self.inner.state.borrow_mut();
            let now = self.inner.sim.now();
            let (sockets, cps) = self.dims();
            let (policy, pctx) = policy_split(&mut st, now, sockets, cps);
            policy.tick(&pctx, local);
        }
        loop {
            let now = self.inner.sim.now();
            // Phase 0: occupied?
            {
                let st = self.inner.state.borrow();
                let c = &st.cores[local];
                if c.current.is_some() {
                    return; // the running thread will release the core
                }
                if c.busy_until > now {
                    // Tasklet/hook work in flight: come back when it ends.
                    let until = c.busy_until;
                    drop(st);
                    self.schedule_run(core, until - now);
                    return;
                }
            }
            // Phase 1: tasklets. The invocation penalty (cross-CPU
            // notification) elapses before the body runs, so offloaded
            // submissions hit the wire 2 µs after being scheduled from a
            // remote core — the overhead the paper measures in §4.1.
            let tasklet = {
                let mut st = self.inner.state.borrow_mut();
                Self::pop_ready_tasklet(&mut st)
            };
            if let Some(id) = tasklet {
                let invoke = self.claim_tasklet(id, core);
                if invoke.is_zero() {
                    let cost = self.execute_tasklet_body(id, core, false);
                    if !cost.is_zero() {
                        let mut st = self.inner.state.borrow_mut();
                        st.cores[local].busy_until = now + cost;
                        drop(st);
                        self.schedule_run(core, cost);
                        return;
                    }
                    continue;
                }
                {
                    let mut st = self.inner.state.borrow_mut();
                    st.cores[local].busy_until = now + invoke;
                }
                let marcel = self.clone();
                self.inner.sim.schedule_in(invoke, move |sim| {
                    let cost = marcel.execute_tasklet_body(id, core, false);
                    let local = marcel.local(core);
                    let t = sim.now();
                    marcel.inner.state.borrow_mut().cores[local].busy_until = t + cost;
                    marcel.schedule_run(core, cost);
                });
                return;
            }
            // Phase 2: threads — ask the policy for the best eligible one.
            let dispatched = {
                let mut st = self.inner.state.borrow_mut();
                let (sockets, cps) = self.dims();
                let (policy, pctx) = policy_split(&mut st, now, sockets, cps);
                policy.dispatch(&pctx, local)
            };
            if let Some(d) = dispatched {
                let tid = d.thread;
                let ctx_switch = self.inner.cfg.ctx_switch;
                {
                    let mut st = self.inner.state.borrow_mut();
                    st.stats.note_pop(d.source);
                    st.stats.dispatches += 1;
                    let rec = st.threads.get_mut(tid.0).expect("queued thread missing");
                    debug_assert_eq!(rec.state, TState::Ready);
                    rec.state = TState::Running(core);
                    rec.last_core = Some(core);
                    st.cores[local].current = Some(tid);
                }
                self.trace(Category::Sched, || {
                    format!("dispatch {:?} on {}", tid, core)
                });
                if ctx_switch.is_zero() {
                    self.wake_dispatch(tid);
                } else {
                    let marcel = self.clone();
                    self.inner
                        .sim
                        .schedule_in(ctx_switch, move |_| marcel.wake_dispatch(tid));
                }
                // More ready threads? Wake another idle core for them.
                if self.ready_thread_count() > 0 {
                    self.kick_one_idle();
                }
                return;
            }
            // Phase 3: idle hooks.
            let (cost, armed) = self.hook_sweep(core, now);
            if !cost.is_zero() {
                let mut st = self.inner.state.borrow_mut();
                st.cores[local].busy_until = now + cost;
                drop(st);
                self.schedule_run(core, cost);
                return;
            }
            if armed {
                self.schedule_run(core, self.inner.cfg.idle_poll_period);
                return;
            }
            // Truly idle: sleep until kicked.
            return;
        }
    }

    pub(crate) fn wake_dispatch(&self, thread: ThreadId) {
        let waker = {
            let mut st = self.inner.state.borrow_mut();
            st.threads
                .get_mut(thread.0)
                .and_then(|r| r.dispatch_waker.take())
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    pub(crate) fn trace(&self, cat: Category, f: impl FnOnce() -> String) {
        self.inner
            .sim
            .trace()
            .emit_with(self.inner.sim.now(), cat, f);
    }
}
