//! Thread lifecycle: spawn, park/unpark, block/wake, yield, finish — and
//! the load queries PIOMAN consumes.

use super::{policy_split, Marcel, TState, ThreadRec};
use crate::policy::{ReadyEvent, StopKind, ThreadView};
use crate::thread::{Priority, ThreadCtx, ThreadId, WaitDispatched};
use pm2_sim::trace::Category;
use pm2_sim::{SimDuration, Trigger};
use pm2_topo::CoreId;
use std::future::Future;
use std::task::Waker;

impl Marcel {
    /// Spawns a Marcel thread running `body`.
    ///
    /// The thread starts in the ready queue and runs once a core dispatches
    /// it. `affinity` restricts it to a single core if given.
    pub fn spawn<F, Fut>(
        &self,
        name: impl Into<String>,
        priority: Priority,
        affinity: Option<CoreId>,
        body: F,
    ) -> ThreadId
    where
        F: FnOnce(ThreadCtx) -> Fut + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        let name = name.into();
        let (id, hint) = {
            let mut st = self.inner.state.borrow_mut();
            let id = ThreadId(st.threads.insert(ThreadRec {
                state: TState::Ready,
                priority,
                affinity,
                last_core: None,
                dispatch_waker: None,
                finished: Trigger::new(),
                park_trigger: None,
                unpark_permit: false,
                name: name.clone(),
            }));
            let view = ThreadView {
                id,
                priority,
                affinity: affinity.map(|c| self.local(c)),
                last_core: None,
            };
            let now = self.inner.sim.now();
            let (sockets, cps) = self.dims();
            let (policy, pctx) = policy_split(&mut st, now, sockets, cps);
            policy.enqueue(&pctx, &view, ReadyEvent::Spawn);
            (id, policy.select_core(&pctx, &view, ReadyEvent::Spawn))
        };
        let marcel = self.clone();
        let ctx = ThreadCtx {
            marcel: self.clone(),
            id,
        };
        self.inner.sim.spawn_named(Some(name), async move {
            WaitDispatched {
                marcel: marcel.clone(),
                id,
            }
            .await;
            body(ctx).await;
            marcel.finish_thread(id);
        });
        self.apply_kick(hint);
        id
    }

    /// Trigger fired when `thread` finishes.
    pub fn finished(&self, thread: ThreadId) -> Trigger {
        self.inner
            .state
            .borrow()
            .threads
            .get(thread.0)
            .expect("unknown thread")
            .finished
            .clone()
    }

    /// Wakes a parked thread (or stores a permit if it is not parked).
    pub fn unpark(&self, thread: ThreadId) {
        let trig = {
            let mut st = self.inner.state.borrow_mut();
            let Some(rec) = st.threads.get_mut(thread.0) else {
                return;
            };
            match rec.park_trigger.take() {
                Some(t) => Some(t),
                None => {
                    rec.unpark_permit = true;
                    None
                }
            }
        };
        if let Some(t) = trig {
            t.fire();
        }
    }

    /// Debug name of a thread.
    pub fn thread_name(&self, thread: ThreadId) -> Option<String> {
        self.inner
            .state
            .borrow()
            .threads
            .get(thread.0)
            .map(|r| r.name.clone())
    }

    pub(crate) fn begin_park(&self, thread: ThreadId) -> Option<Trigger> {
        let mut st = self.inner.state.borrow_mut();
        let rec = st.threads.get_mut(thread.0).expect("unknown thread");
        if rec.unpark_permit {
            rec.unpark_permit = false;
            None
        } else {
            let t = Trigger::new();
            rec.park_trigger = Some(t.clone());
            Some(t)
        }
    }

    pub(crate) fn is_running(&self, thread: ThreadId) -> bool {
        matches!(
            self.inner
                .state
                .borrow()
                .threads
                .get(thread.0)
                .map(|r| r.state),
            Some(TState::Running(_))
        )
    }

    pub(crate) fn core_of(&self, thread: ThreadId) -> Option<CoreId> {
        match self.inner.state.borrow().threads.get(thread.0)?.state {
            TState::Running(c) => Some(c),
            _ => None,
        }
    }

    pub(crate) fn set_dispatch_waker(&self, thread: ThreadId, waker: Waker) {
        if let Some(rec) = self.inner.state.borrow_mut().threads.get_mut(thread.0) {
            rec.dispatch_waker = Some(waker);
        }
    }

    /// Marks `thread` blocked and frees its core.
    pub(crate) fn release_blocked(&self, thread: ThreadId) {
        self.release_core_of(thread, TState::Blocked, false);
    }

    /// Marks `thread` ready (requeued at the back) and frees its core.
    pub(crate) fn release_ready(&self, thread: ThreadId) {
        self.release_core_of(thread, TState::Ready, true);
    }

    fn release_core_of(&self, thread: ThreadId, new_state: TState, requeue: bool) {
        let freed = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.threads.get_mut(thread.0).expect("unknown thread");
            let TState::Running(core) = rec.state else {
                panic!("thread {thread:?} released while not running");
            };
            rec.state = new_state;
            rec.last_core = Some(core);
            let view = self.thread_view(thread, rec);
            let from_core = self.local(core);
            let reason = if requeue {
                StopKind::Yield
            } else {
                StopKind::Block
            };
            {
                let now = self.inner.sim.now();
                let (sockets, cps) = self.dims();
                let (policy, pctx) = policy_split(&mut st, now, sockets, cps);
                policy.stopping(&pctx, &view, reason);
                if requeue {
                    // No kick: the freed core re-scans below and yields
                    // advise `KickHint::None` anyway.
                    policy.enqueue(&pctx, &view, ReadyEvent::Yield { from_core });
                }
            }
            debug_assert_eq!(st.cores[from_core].current, Some(thread));
            st.cores[from_core].current = None;
            core
        };
        self.trace(Category::Sched, || {
            format!("release {:?} -> {:?}", thread, new_state)
        });
        self.schedule_run(freed, SimDuration::ZERO);
    }

    /// Requeues a blocked thread; `urgent` marks communication events that
    /// "ask MARCEL to schedule it" as soon as they are detected (§3.2).
    /// Queue priority and core choice are the policy's.
    pub(crate) fn make_ready(&self, thread: ThreadId, urgent: bool) {
        let hint = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.threads.get_mut(thread.0).expect("unknown thread");
            debug_assert_eq!(rec.state, TState::Blocked);
            rec.state = TState::Ready;
            let view = self.thread_view(thread, rec);
            let now = self.inner.sim.now();
            let (sockets, cps) = self.dims();
            let (policy, pctx) = policy_split(&mut st, now, sockets, cps);
            let ev = ReadyEvent::Wakeup { urgent };
            policy.enqueue(&pctx, &view, ev);
            policy.select_core(&pctx, &view, ev)
        };
        self.apply_kick(hint);
    }

    pub(crate) fn finish_thread(&self, thread: ThreadId) {
        let (core, finished) = {
            let mut st = self.inner.state.borrow_mut();
            let rec = st.threads.get_mut(thread.0).expect("unknown thread");
            let core = match rec.state {
                TState::Running(c) => Some(c),
                _ => None,
            };
            rec.state = TState::Finished;
            let finished = rec.finished.clone();
            let view = self.thread_view(thread, rec);
            {
                let now = self.inner.sim.now();
                let (sockets, cps) = self.dims();
                let (policy, pctx) = policy_split(&mut st, now, sockets, cps);
                policy.stopping(&pctx, &view, StopKind::Finish);
            }
            if let Some(c) = core {
                let local = self.inner.topo.local_index(c);
                st.cores[local].current = None;
            }
            (core, finished)
        };
        finished.fire();
        if let Some(c) = core {
            self.schedule_run(c, SimDuration::ZERO);
        }
    }

    // ----- load information (consumed by PIOMAN) -------------------------

    /// Number of cores with no thread and no tasklet work right now.
    pub fn idle_core_count(&self) -> usize {
        let now = self.inner.sim.now();
        self.inner
            .state
            .borrow()
            .cores
            .iter()
            .filter(|c| c.current.is_none() && c.busy_until <= now)
            .count()
    }

    /// True if at least one core is idle.
    pub fn has_idle_core(&self) -> bool {
        self.idle_core_count() > 0
    }

    /// Number of threads currently running on a core.
    pub fn running_thread_count(&self) -> usize {
        self.inner
            .state
            .borrow()
            .threads
            .iter()
            .filter(|(_, r)| matches!(r.state, TState::Running(_)))
            .count()
    }

    /// Number of threads waiting in the policy's run queues.
    pub fn ready_thread_count(&self) -> usize {
        self.inner.state.borrow().policy.queued()
    }

    /// Number of threads not yet finished.
    pub fn live_thread_count(&self) -> usize {
        self.inner
            .state
            .borrow()
            .threads
            .iter()
            .filter(|(_, r)| r.state != TState::Finished)
            .count()
    }
}
