//! The pluggable scheduling-policy interface.
//!
//! The Marcel engine (cores, tasklets, timers, idle hooks, the dispatch
//! machinery) is fixed; *which thread runs where, and in what order* is
//! delegated to a [`SchedPolicy`], in the spirit of sched_ext: the engine
//! calls a small set of hooks and the policy owns its own run queues.
//!
//! The hook contract (see DESIGN.md §10 for the full narrative):
//!
//! * [`SchedPolicy::enqueue`] — a thread became ready ([`ReadyEvent`] says
//!   why); the policy must queue it somewhere it will later hand back from
//!   `dispatch`. Called exactly once per ready transition.
//! * [`SchedPolicy::select_core`] — same event, asked *which core to kick*;
//!   purely advisory ([`KickHint`]), the engine applies it after the
//!   enqueue. Returning [`KickHint::None`] never deadlocks the engine for
//!   yields (the freed core always re-scans), but wakeups/spawns should
//!   kick or the thread waits for the next natural scan.
//! * [`SchedPolicy::dispatch`] — a core is looking for a thread; pop the
//!   best eligible one. Strict affinity must be honored here (never hand a
//!   thread pinned to core A to core B).
//! * [`SchedPolicy::on_wakeup`] — maps a wakeup to an effective queue
//!   priority (urgent wakeups outrank, §3.2); policies call it from their
//!   own `enqueue`.
//! * [`SchedPolicy::tick`] — a core entered its work loop; bookkeeping
//!   only.
//! * [`SchedPolicy::stopping`] — a previously dispatched thread left its
//!   core ([`StopKind`] says why); the place to account CPU usage.
//!
//! Determinism: policies must not consult wall clocks, random state or
//! hash-map iteration order — everything observable must derive from the
//! hook arguments (this is what keeps simulations reproducible per seed).

use crate::comm::CommSignals;
use crate::policies;
use crate::sched::Core;
use crate::thread::{Priority, ThreadId};
use pm2_sim::SimTime;

/// Why a thread became ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyEvent {
    /// Fresh [`crate::Marcel::spawn`].
    Spawn,
    /// Cooperative yield; `from_core` is the local core it just ran on
    /// (cache-warm there).
    Yield {
        /// Local index of the core the thread yielded.
        from_core: usize,
    },
    /// Blocked thread woken; `urgent` marks communication events that must
    /// be served "as soon as … detected" (§3.2).
    Wakeup {
        /// Queue-jump request from the waker.
        urgent: bool,
    },
}

/// Which core the engine should nudge after an enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KickHint {
    /// Schedule a scan of this local core now (used for strict affinity).
    Core(usize),
    /// Wake the idle core nearest to this local core (cache-warm wakeup).
    Near(usize),
    /// Wake any idle core.
    AnyIdle,
    /// No kick (the freed core's own re-scan suffices, e.g. on yield).
    None,
}

/// Why a thread left its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopKind {
    /// Blocked on an event (trigger, park, sleep).
    Block,
    /// Cooperative yield (immediately re-enqueued).
    Yield,
    /// Body finished.
    Finish,
}

/// Where a dispatched thread was queued, for locality statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopSource {
    /// The core's own strict-affinity queue.
    Core,
    /// The core's own socket (cache-warm).
    LocalSocket,
    /// A node-wide queue.
    Node,
    /// Stolen from another socket's queue.
    RemoteSocket,
}

/// A thread handed back by [`SchedPolicy::dispatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatched {
    /// The thread to run.
    pub thread: ThreadId,
    /// Where it was queued (tallied into [`crate::SchedStats`]).
    pub source: PopSource,
}

/// Immutable view of one ready thread, as the policy hooks see it.
///
/// Core indices are *local* to the node (0 .. cores-per-node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadView {
    /// The thread.
    pub id: ThreadId,
    /// Its base priority (the policy may queue it higher or lower).
    pub priority: Priority,
    /// Strict affinity, if pinned.
    pub affinity: Option<usize>,
    /// Local core it last ran on, if it ever ran.
    pub last_core: Option<usize>,
}

/// What a policy may observe when a hook runs: virtual time, topology
/// shape, per-core load, pending tasklet pressure and the communication
/// request signals.
pub struct PolicyCtx<'a> {
    now: SimTime,
    cores: &'a [Core],
    comm: &'a CommSignals,
    sockets: usize,
    cores_per_socket: usize,
    pending_tasklets: usize,
}

impl<'a> PolicyCtx<'a> {
    pub(crate) fn new(
        now: SimTime,
        cores: &'a [Core],
        comm: &'a CommSignals,
        sockets: usize,
        cores_per_socket: usize,
        pending_tasklets: usize,
    ) -> Self {
        PolicyCtx {
            now,
            cores,
            comm,
            sockets,
            cores_per_socket,
            pending_tasklets,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cores on this node.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Sockets on this node.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Socket of a local core index.
    pub fn socket_of(&self, local_core: usize) -> usize {
        local_core / self.cores_per_socket
    }

    /// Thread currently occupying `local_core`, if any.
    pub fn running(&self, local_core: usize) -> Option<ThreadId> {
        self.cores[local_core].current
    }

    /// Until when `local_core` is occupied by tasklet/hook work.
    pub fn busy_until(&self, local_core: usize) -> SimTime {
        self.cores[local_core].busy_until
    }

    /// True if `local_core` has neither a thread nor in-flight work.
    pub fn is_idle(&self, local_core: usize) -> bool {
        self.cores[local_core].current.is_none() && self.cores[local_core].busy_until <= self.now
    }

    /// Tasklets queued node-wide (they outrank every thread).
    pub fn pending_tasklets(&self) -> usize {
        self.pending_tasklets
    }

    /// Communication request signals (see [`CommSignals`]).
    pub fn comm(&self) -> &CommSignals {
        self.comm
    }
}

/// A pluggable thread-scheduling policy (see the module docs for the hook
/// contract). Policies are per-node and single-threaded, driven entirely
/// by the simulation's event order.
pub trait SchedPolicy {
    /// Short stable name ("hier", "fifo", …) used for selection and
    /// reporting.
    fn name(&self) -> &'static str;

    /// Effective queue priority for a wakeup. The default honors the
    /// waker's urgency flag and otherwise keeps the base priority.
    fn on_wakeup(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, urgent: bool) -> Priority {
        let _ = ctx;
        if urgent {
            Priority::High
        } else {
            th.priority
        }
    }

    /// Queue a thread that just became ready.
    fn enqueue(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent);

    /// Advise which core to kick for the thread just enqueued.
    fn select_core(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, ev: ReadyEvent) -> KickHint;

    /// Pop the best thread for `local_core` (or `None` to let the core go
    /// on to its idle hooks).
    fn dispatch(&mut self, ctx: &PolicyCtx<'_>, local_core: usize) -> Option<Dispatched>;

    /// A core entered its work loop (bookkeeping hook; default no-op).
    fn tick(&mut self, ctx: &PolicyCtx<'_>, local_core: usize) {
        let _ = (ctx, local_core);
    }

    /// A dispatched thread left its core (default no-op).
    fn stopping(&mut self, ctx: &PolicyCtx<'_>, th: &ThreadView, reason: StopKind) {
        let _ = (ctx, th, reason);
    }

    /// Number of threads currently queued (all levels).
    fn queued(&self) -> usize;
}

/// Selects one of the shipped scheduling policies by name.
///
/// # Example
/// ```
/// use pm2_marcel::SchedPolicyKind;
/// assert_eq!(
///     SchedPolicyKind::from_name("comm"),
///     Some(SchedPolicyKind::CommAware)
/// );
/// assert_eq!(SchedPolicyKind::CommAware.name(), "comm");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicyKind {
    /// Hierarchical run queues (core/socket/node × priority) — the
    /// paper-faithful default.
    #[default]
    Hier,
    /// Single global FIFO ignoring priority, urgency and locality — the
    /// naive baseline.
    Fifo,
    /// Priority-weighted virtual-runtime fairness (CFS-style).
    Vruntime,
    /// Hierarchical queues plus a boost for threads whose awaited request
    /// is near completion.
    CommAware,
}

impl SchedPolicyKind {
    /// Stable selection name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicyKind::Hier => "hier",
            SchedPolicyKind::Fifo => "fifo",
            SchedPolicyKind::Vruntime => "vruntime",
            SchedPolicyKind::CommAware => "comm",
        }
    }

    /// Parses a policy name (accepts a few aliases).
    pub fn from_name(name: &str) -> Option<SchedPolicyKind> {
        match name {
            "hier" | "hierarchical" | "default" => Some(SchedPolicyKind::Hier),
            "fifo" | "global" => Some(SchedPolicyKind::Fifo),
            "vruntime" | "fair" | "cfs" => Some(SchedPolicyKind::Vruntime),
            "comm" | "comm-aware" | "commaware" => Some(SchedPolicyKind::CommAware),
            _ => None,
        }
    }

    /// Every shipped policy, default first.
    pub fn all() -> [SchedPolicyKind; 4] {
        [
            SchedPolicyKind::Hier,
            SchedPolicyKind::Fifo,
            SchedPolicyKind::Vruntime,
            SchedPolicyKind::CommAware,
        ]
    }

    /// Builds the policy for a node with the given shape.
    pub fn build(self, cores: usize, sockets: usize) -> Box<dyn SchedPolicy> {
        match self {
            SchedPolicyKind::Hier => Box::new(policies::HierPolicy::new(cores, sockets)),
            SchedPolicyKind::Fifo => Box::new(policies::FifoPolicy::new(cores)),
            SchedPolicyKind::Vruntime => Box::new(policies::VruntimePolicy::new(cores)),
            SchedPolicyKind::CommAware => Box::new(policies::CommAwarePolicy::new(cores, sockets)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in SchedPolicyKind::all() {
            assert_eq!(SchedPolicyKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.build(4, 2).name(), kind.name());
        }
        assert_eq!(SchedPolicyKind::from_name("nope"), None);
    }

    #[test]
    fn default_is_hier() {
        assert_eq!(SchedPolicyKind::default(), SchedPolicyKind::Hier);
    }
}
