//! Simulated tasklets: the Linux `tasklet_struct` state machine under
//! virtual time.

use pm2_sim::SimDuration;
use pm2_topo::CoreId;

/// Identifier of a tasklet registered with a [`crate::Marcel`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskletId(pub(crate) usize);

/// Execution context handed to a tasklet body.
///
/// The body reports the CPU time its work consumed by calling
/// [`TaskletRun::charge`]; Marcel keeps the executing core busy for that
/// long before looking for more work. This is how "the transfer (data
/// copy, PIO, etc.) is performed on this idle CPU" (§3.2) is priced.
pub struct TaskletRun {
    core: CoreId,
    charged: SimDuration,
    reschedule: bool,
    shard: Option<u32>,
}

impl TaskletRun {
    pub(crate) fn new(core: CoreId) -> Self {
        TaskletRun {
            core,
            charged: SimDuration::ZERO,
            reschedule: false,
            shard: None,
        }
    }

    /// The core executing the tasklet.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Adds `cost` of CPU time to this execution.
    pub fn charge(&mut self, cost: SimDuration) {
        self.charged += cost;
    }

    /// Requests that the tasklet run again after this execution (same as
    /// scheduling it from within its own body).
    pub fn reschedule(&mut self) {
        self.reschedule = true;
    }

    /// Names which shard of the tasklet's backend the work of this
    /// execution landed on (e.g. which PIOMAN progress driver); Marcel
    /// tallies per-shard tasklet work
    /// ([`crate::Marcel::tasklet_shard_work`]).
    pub fn note_shard(&mut self, shard: u32) {
        self.shard = Some(shard);
    }

    pub(crate) fn take_outcome(self) -> (SimDuration, bool, Option<u32>) {
        (self.charged, self.reschedule, self.shard)
    }
}

/// A tasklet body callback.
pub(crate) type TaskletBody = Box<dyn FnMut(&mut TaskletRun)>;

/// Internal record of a registered tasklet.
pub(crate) struct TaskletRec {
    /// Body taken out while running (prevents re-entrant execution and
    /// RefCell aliasing).
    pub(crate) body: Option<TaskletBody>,
    /// SCHED bit: queued for execution.
    pub(crate) scheduled: bool,
    /// RUN bit: body currently executing (single-threaded sim still models
    /// it for re-schedule-while-running semantics).
    pub(crate) running: bool,
    /// Disable nesting depth.
    pub(crate) disabled: u32,
    /// Preferred core (the core that scheduled it last); used to price the
    /// cross-CPU invocation penalty.
    pub(crate) origin: Option<CoreId>,
    /// Executions so far.
    pub(crate) runs: u64,
    /// Debug label.
    pub(crate) name: String,
}
