//! The MX-like NIC and the inter-node links.

use crate::params::{FabricParams, FaultPlan};
use pm2_sim::rng::Xoshiro256;
use pm2_sim::trace::Category;
use pm2_sim::{Sim, SimDuration, SimTime, Trigger};
use pm2_topo::{NodeId, Topology};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

/// A frame delivered by the fabric.
#[derive(Debug, Clone)]
pub struct Frame<P> {
    /// Sending node.
    pub src: NodeId,
    /// Bytes that crossed the wire (header + payload).
    pub wire_bytes: usize,
    /// Protocol payload (opaque to the fabric).
    pub payload: P,
}

/// Timing of a transmitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxInfo {
    /// When the NIC finishes reading the frame out of host memory (the
    /// send buffer is reusable and a send request may complete).
    pub egress_end: SimTime,
    /// When the frame is delivered into the destination receive queue.
    pub arrival: SimTime,
}

/// Cumulative per-NIC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Frames received.
    pub rx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Host polls performed against this NIC.
    pub polls: u64,
    /// Inbound frames dropped on the wire by fault injection.
    pub faults_dropped: u64,
    /// Inbound frames duplicated by fault injection.
    pub faults_duplicated: u64,
    /// Inbound frames reorder-delayed by fault injection.
    pub faults_delayed: u64,
    /// Inbound frames discarded by the CRC check (corruption injection).
    pub faults_corrupted: u64,
    /// Inbound frames held back by a rail stall window.
    pub faults_stalled: u64,
}

/// Per-ordered-pair link bookkeeping for in-order delivery.
#[derive(Default, Clone, Copy)]
struct LinkState {
    last_arrival: SimTime,
}

struct FabricState {
    /// Egress serialization point per source node.
    egress_free: Vec<SimTime>,
    /// In-order delivery horizon per (src, dst).
    links: Vec<LinkState>, // index = src * nodes + dst
    /// Fabric-global transmission index (targets for `FaultPlan`).
    tx_count: u64,
}

/// What fault injection decided for one frame.
struct Fate {
    deliver_at: Option<SimTime>,
    dup_at: Option<SimTime>,
    corrupt: bool,
}

/// The cluster interconnect: one [`Nic`] per node plus the links.
///
/// # Example
/// ```
/// use pm2_fabric::{Fabric, FabricParams};
/// use pm2_sim::Sim;
/// use pm2_topo::{NodeId, Topology};
/// use std::rc::Rc;
///
/// let sim = Sim::new(0);
/// let topo = Rc::new(Topology::new(2, 1, 1));
/// let fabric: Rc<Fabric<&str>> = Fabric::new(sim.clone(), topo, FabricParams::myri10g());
/// fabric.nic(NodeId(0)).tx(NodeId(1), 64, "frame");
/// sim.run();
/// assert_eq!(fabric.nic(NodeId(1)).rx_poll().unwrap().payload, "frame");
/// ```
pub struct Fabric<P: 'static> {
    sim: Sim,
    topo: Rc<Topology>,
    params: FabricParams,
    state: RefCell<FabricState>,
    /// Fault stream, seeded by the plan: disjoint from the simulation RNG
    /// so an active plan never shifts happy-path jitter draws.
    fault_rng: RefCell<Xoshiro256>,
    nics: RefCell<Vec<Rc<Nic<P>>>>,
}

impl<P: 'static> Fabric<P> {
    /// Builds the fabric for `topo` with the given cost model.
    pub fn new(sim: Sim, topo: Rc<Topology>, params: FabricParams) -> Rc<Self> {
        let nodes = topo.nodes();
        let fabric = Rc::new(Fabric {
            sim: sim.clone(),
            topo: Rc::clone(&topo),
            params: params.clone(),
            state: RefCell::new(FabricState {
                egress_free: vec![SimTime::ZERO; nodes],
                links: vec![LinkState::default(); nodes * nodes],
                tx_count: 0,
            }),
            fault_rng: RefCell::new(Xoshiro256::new(params.fault.seed)),
            nics: RefCell::new(Vec::new()),
        });
        let nics = (0..nodes)
            .map(|n| {
                Rc::new(Nic {
                    node: NodeId(n),
                    sim: sim.clone(),
                    params: params.clone(),
                    fabric: Rc::downgrade(&fabric),
                    rx: RefCell::new(VecDeque::new()),
                    rx_trigger: RefCell::new(Trigger::new()),
                    rx_callback: RefCell::new(None),
                    counters: RefCell::new(NicCounters::default()),
                })
            })
            .collect();
        *fabric.nics.borrow_mut() = nics;
        fabric
    }

    /// The NIC of `node`.
    pub fn nic(&self, node: NodeId) -> Rc<Nic<P>> {
        Rc::clone(&self.nics.borrow()[node.0])
    }

    /// The cost model.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// The topology.
    pub fn topology(&self) -> &Rc<Topology> {
        &self.topo
    }

    /// Schedules the wire transfer of a frame from `src` to `dst`.
    ///
    /// The host submission cost must already have been paid by the caller
    /// (see [`Nic::submit_cost`]); from here on no host CPU is consumed
    /// until the frame is polled at the destination.
    fn transmit(
        &self,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
        payload: P,
        delay: SimDuration,
    ) -> TxInfo
    where
        P: Clone,
    {
        assert_ne!(src, dst, "intra-node traffic must use the shm channel");
        let now = self.sim.now() + delay;
        let mut tx_time = self.params.wire_time(wire_bytes);
        if self.params.jitter_frac > 0.0 {
            let j = self.params.jitter_frac;
            let f = self.sim.with_rng(|r| 1.0 + j * (2.0 * r.gen_f64() - 1.0));
            tx_time = SimDuration::from_micros_f64(tx_time.as_micros_f64() * f);
        }
        let (egress_end, arrival, frame_idx) = {
            let mut st = self.state.borrow_mut();
            // NIC egress serializes frames of the same sender.
            let start = st.egress_free[src.0].max(now);
            let end = start + tx_time;
            st.egress_free[src.0] = end;
            let link = &mut st.links[src.0 * self.topo.nodes() + dst.0];
            // In-order delivery per (src, dst) even under jitter.
            let arrival = (end + self.params.wire_latency).max(link.last_arrival);
            link.last_arrival = arrival;
            let idx = st.tx_count;
            st.tx_count += 1;
            (end, arrival, idx)
        };
        let nic = self.nic(dst);
        let frame = Frame {
            src,
            wire_bytes,
            payload,
        };
        if self.params.fault.is_active() {
            self.deliver_with_faults(frame, nic, frame_idx, arrival);
        } else {
            self.sim.schedule_at(arrival, move |_| nic.deliver(frame));
        }
        self.sim
            .trace()
            .emit_with(self.sim.now(), Category::Hw, || {
                format!("tx {src}->{dst} {wire_bytes}B arrives at {arrival}")
            });
        TxInfo {
            egress_end,
            arrival,
        }
    }

    /// Runs the frame through the fault plan and schedules the surviving
    /// deliveries. The sender's `TxInfo` is untouched — a dropped frame
    /// looks exactly like a sent one from the source host's perspective.
    fn deliver_with_faults(&self, frame: Frame<P>, nic: Rc<Nic<P>>, idx: u64, arrival: SimTime)
    where
        P: Clone,
    {
        let plan = &self.params.fault;
        let fate = self.frame_fate(plan, &nic, idx, arrival, frame.wire_bytes);
        if fate.corrupt {
            // The frame crosses the wire but fails the destination CRC:
            // the NIC discards it without enqueuing, so to the protocol it
            // is indistinguishable from a loss (but separately counted).
            if let Some(at) = fate.deliver_at {
                let wire_bytes = frame.wire_bytes;
                self.sim.schedule_at(at, move |_| {
                    nic.note_corrupt_discard(wire_bytes);
                });
            }
            return;
        }
        if let Some(at) = fate.dup_at {
            let nic2 = Rc::clone(&nic);
            let copy = frame.clone();
            self.sim.schedule_at(at, move |_| nic2.deliver(copy));
        }
        if let Some(at) = fate.deliver_at {
            self.sim.schedule_at(at, move |_| nic.deliver(frame));
        }
    }

    /// Decides drop/dup/delay/corrupt/stall for one frame. Draw order is
    /// fixed (drop, dup, delay, corrupt) and each draw happens only when
    /// its rate is non-zero, so scenarios stay reproducible per seed.
    fn frame_fate(
        &self,
        plan: &FaultPlan,
        nic: &Nic<P>,
        idx: u64,
        arrival: SimTime,
        wire_bytes: usize,
    ) -> Fate {
        let sent_at = self.sim.now();
        let in_window = plan
            .window
            .map(|(from, until)| sent_at >= from && sent_at < until)
            .unwrap_or(true);
        let mut rng = self.fault_rng.borrow_mut();
        let mut draw = |rate: f64| rate > 0.0 && in_window && rng.gen_bool(rate);
        let dropped = plan.drop_frames.contains(&idx) || draw(plan.drop_rate);
        let duplicated = plan.dup_frames.contains(&idx) || draw(plan.dup_rate);
        let delayed = plan.delay_frames.contains(&idx) || draw(plan.delay_rate);
        let corrupt = plan.corrupt_frames.contains(&idx) || draw(plan.corrupt_rate);
        drop(rng);
        let mut c = nic.counters.borrow_mut();
        if dropped {
            c.faults_dropped += 1;
            return Fate {
                deliver_at: None,
                dup_at: None,
                corrupt: false,
            };
        }
        // The link horizon already advanced to the nominal arrival, so a
        // delayed frame is overtaken by its successors: true reordering.
        let mut deliver_at = arrival;
        if delayed {
            c.faults_delayed += 1;
            deliver_at += plan.delay;
        }
        let stalled = self.stall_release(plan, nic.node, deliver_at);
        if let Some(release) = stalled {
            c.faults_stalled += 1;
            deliver_at = release;
        }
        let dup_at = if duplicated {
            c.faults_duplicated += 1;
            // The copy tails the original by one frame time, like a
            // back-to-back hardware retransmission.
            let mut at = deliver_at + self.params.wire_time(wire_bytes);
            if let Some(release) = self.stall_release(plan, nic.node, at) {
                at = release;
            }
            Some(at)
        } else {
            None
        };
        Fate {
            deliver_at: Some(deliver_at),
            dup_at,
            corrupt,
        }
    }

    /// If `t` falls inside a stall window covering `dst`, returns the
    /// release time (chaining across overlapping windows).
    fn stall_release(&self, plan: &FaultPlan, dst: NodeId, t: SimTime) -> Option<SimTime> {
        let mut at = t;
        let mut hit = false;
        // Windows may chain (release into a later window); bounded passes.
        for _ in 0..=plan.stalls.len() {
            let next = plan
                .stalls
                .iter()
                .filter(|w| w.node.is_none_or(|n| n == dst.0))
                .find(|w| at >= w.from && at < w.until)
                .map(|w| w.until);
            match next {
                Some(u) if u > at => {
                    at = u;
                    hit = true;
                }
                _ => break,
            }
        }
        hit.then_some(at)
    }
}

/// One node's network interface.
pub struct Nic<P: 'static> {
    node: NodeId,
    sim: Sim,
    params: FabricParams,
    fabric: Weak<Fabric<P>>,
    rx: RefCell<VecDeque<Frame<P>>>,
    rx_trigger: RefCell<Trigger>,
    rx_callback: RefCell<Option<Box<dyn Fn()>>>,
    counters: RefCell<NicCounters>,
}

impl<P: 'static> Nic<P> {
    /// The node this NIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Host CPU cost of submitting an eager message with `app_bytes` of
    /// payload (PIO or copy + DMA post). The *caller* decides which core
    /// pays this — that decision is the paper's contribution.
    pub fn submit_cost(&self, app_bytes: usize) -> SimDuration {
        self.params.submit_cost(app_bytes)
    }

    /// Host CPU cost of one receive poll.
    pub fn poll_cost(&self) -> SimDuration {
        self.params.poll_cost
    }

    /// Hands a frame to the wire immediately. Returns when the buffer is
    /// reusable and when the frame lands.
    pub fn tx(&self, dst: NodeId, wire_bytes: usize, payload: P) -> TxInfo
    where
        P: Clone,
    {
        self.tx_after(dst, wire_bytes, payload, SimDuration::ZERO)
    }

    /// Hands a frame to the wire once `delay` of host work (the PIO/copy
    /// submission the caller is charging to a core) has elapsed; the
    /// egress cannot start before then.
    pub fn tx_after(&self, dst: NodeId, wire_bytes: usize, payload: P, delay: SimDuration) -> TxInfo
    where
        P: Clone,
    {
        {
            let mut c = self.counters.borrow_mut();
            c.tx_frames += 1;
            c.tx_bytes += wire_bytes as u64;
        }
        self.fabric
            .upgrade()
            .expect("fabric dropped")
            .transmit(self.node, dst, wire_bytes, payload, delay)
    }

    /// A corrupted frame reached this NIC and failed the CRC check: it is
    /// discarded without entering the receive queue (fabric-internal).
    fn note_corrupt_discard(&self, _wire_bytes: usize) {
        self.counters.borrow_mut().faults_corrupted += 1;
    }

    /// Delivers an arrived frame into the receive queue (fabric-internal).
    fn deliver(&self, frame: Frame<P>) {
        {
            let mut c = self.counters.borrow_mut();
            c.rx_frames += 1;
            c.rx_bytes += frame.wire_bytes as u64;
        }
        self.rx.borrow_mut().push_back(frame);
        // Wake any blocking call waiting on this NIC.
        self.rx_trigger.borrow().fire();
        // Notify the driver (stands in for the doorbell a continuously
        // polling idle core would observe immediately).
        if let Some(cb) = self.rx_callback.borrow().as_ref() {
            cb();
        }
    }

    /// Installs a callback invoked at every frame delivery. The driver
    /// uses it to nudge idle cores — the simulation-friendly equivalent of
    /// their continuous busy-poll observing the doorbell.
    pub fn set_rx_callback(&self, cb: impl Fn() + 'static) {
        *self.rx_callback.borrow_mut() = Some(Box::new(cb));
    }

    /// Polls the receive queue. The caller must charge
    /// [`Nic::poll_cost`] to whichever core performed the poll.
    pub fn rx_poll(&self) -> Option<Frame<P>> {
        self.counters.borrow_mut().polls += 1;
        self.rx.borrow_mut().pop_front()
    }

    /// True if a frame is waiting (free to check: doorbell in host memory).
    pub fn rx_pending(&self) -> bool {
        !self.rx.borrow().is_empty()
    }

    /// A trigger fired as soon as a frame is available, modelling the
    /// interrupt that completes a blocking receive system call.
    ///
    /// If frames are already pending the returned trigger is pre-fired.
    pub fn rx_trigger(&self) -> Trigger {
        let mut slot = self.rx_trigger.borrow_mut();
        if self.rx.borrow().is_empty() && slot.is_fired() {
            *slot = Trigger::new();
        }
        slot.clone()
    }

    /// The per-rail hardware wake-up source for PIOMAN's blocking-call
    /// method: a progress driver returns this from its `hw_trigger`
    /// callback so the kernel watcher arms *this* rail specifically
    /// rather than a whole-library event.
    ///
    /// Alias of [`Nic::rx_trigger`].
    pub fn hw_trigger(&self) -> Trigger {
        self.rx_trigger()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> NicCounters {
        *self.counters.borrow()
    }

    /// The fabric-wide cost model.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// The simulation handle (for drivers that need to schedule).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_sim::SimDuration;
    use std::cell::Cell;

    fn two_nodes() -> (Sim, Rc<Fabric<u32>>) {
        let sim = Sim::new(3);
        let topo = Rc::new(Topology::new(2, 1, 1));
        let fabric = Fabric::new(sim.clone(), topo, FabricParams::myri10g());
        (sim, fabric)
    }

    #[test]
    fn frame_arrives_after_latency_plus_transmission() {
        let (sim, fabric) = two_nodes();
        let n0 = fabric.nic(NodeId(0));
        let n1 = fabric.nic(NodeId(1));
        n0.tx(NodeId(1), 1250, 7);
        assert!(!n1.rx_pending());
        sim.run();
        // 2.8 latency + 0.1 overhead + 1 transmission = 3.9 µs.
        assert_eq!(sim.now().as_nanos(), 3_900);
        let f = n1.rx_poll().expect("frame");
        assert_eq!(f.payload, 7);
        assert_eq!(f.src, NodeId(0));
        assert_eq!(n1.counters().rx_frames, 1);
        assert_eq!(n0.counters().tx_bytes, 1250);
    }

    #[test]
    fn egress_serializes_same_sender() {
        let (sim, fabric) = two_nodes();
        let n0 = fabric.nic(NodeId(0));
        // Two 1250-byte frames: second must wait for the first to leave.
        n0.tx(NodeId(1), 1250, 1);
        n0.tx(NodeId(1), 1250, 2);
        sim.run();
        // First at 3.9, second at 1.1 (egress) + 1.1 + 2.8 = 5.0 µs.
        assert_eq!(sim.now().as_nanos(), 5_000);
        let n1 = fabric.nic(NodeId(1));
        assert_eq!(n1.rx_poll().unwrap().payload, 1);
        assert_eq!(n1.rx_poll().unwrap().payload, 2);
    }

    #[test]
    fn delivery_is_fifo_per_link_even_with_jitter() {
        let sim = Sim::new(11);
        let topo = Rc::new(Topology::new(2, 1, 1));
        let mut params = FabricParams::myri10g();
        params.jitter_frac = 0.5;
        let fabric: Rc<Fabric<u32>> = Fabric::new(sim.clone(), topo, params);
        let n0 = fabric.nic(NodeId(0));
        for i in 0..20 {
            n0.tx(NodeId(1), 64, i);
        }
        sim.run();
        let n1 = fabric.nic(NodeId(1));
        let mut got = Vec::new();
        while let Some(f) = n1.rx_poll() {
            got.push(f.payload);
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn rx_trigger_wakes_blocking_waiter() {
        let (sim, fabric) = two_nodes();
        let n1 = fabric.nic(NodeId(1));
        let woke_at = Rc::new(Cell::new(0u64));
        {
            let trig = n1.rx_trigger();
            let woke_at = Rc::clone(&woke_at);
            let sim2 = sim.clone();
            sim.spawn(async move {
                trig.wait().await;
                woke_at.set(sim2.now().as_nanos());
            });
        }
        let n0 = fabric.nic(NodeId(0));
        sim.schedule_in(SimDuration::from_micros(10), move |_| {
            n0.tx(NodeId(1), 64, 9);
        });
        sim.run();
        // 10 µs + 2.8 latency + ~0.15 transmission.
        assert!(woke_at.get() >= 12_800, "{}", woke_at.get());
        assert!(n1.rx_pending());
    }

    #[test]
    fn rx_trigger_prefired_when_frames_pending() {
        let (sim, fabric) = two_nodes();
        fabric.nic(NodeId(0)).tx(NodeId(1), 64, 1);
        sim.run();
        let n1 = fabric.nic(NodeId(1));
        assert!(n1.rx_trigger().is_fired());
        let _ = n1.rx_poll();
        // Queue drained: a fresh (unfired) trigger is handed out.
        assert!(!n1.rx_trigger().is_fired());
    }

    #[test]
    #[should_panic(expected = "shm channel")]
    fn intra_node_tx_panics() {
        let (_sim, fabric) = two_nodes();
        fabric.nic(NodeId(0)).tx(NodeId(0), 64, 0);
    }

    #[test]
    fn tx_after_defers_egress_by_submission_cost() {
        let (sim, fabric) = two_nodes();
        let n0 = fabric.nic(NodeId(0));
        let immediate = n0.tx(NodeId(1), 1250, 1);
        // Reset world for a clean comparison.
        let (sim2, fabric2) = two_nodes();
        let n0b = fabric2.nic(NodeId(0));
        let delayed = n0b.tx_after(NodeId(1), 1250, 1, SimDuration::from_micros(5));
        assert_eq!(
            delayed.egress_end.as_nanos(),
            immediate.egress_end.as_nanos() + 5_000
        );
        assert_eq!(
            delayed.arrival.as_nanos(),
            immediate.arrival.as_nanos() + 5_000
        );
        sim.run();
        sim2.run();
    }

    #[test]
    fn tx_info_matches_delivery_time() {
        let (sim, fabric) = two_nodes();
        let n0 = fabric.nic(NodeId(0));
        let info = n0.tx(NodeId(1), 4096, 42);
        sim.run();
        assert_eq!(sim.now(), info.arrival);
        assert!(info.egress_end < info.arrival);
    }

    #[test]
    fn rx_callback_fires_on_delivery() {
        let (sim, fabric) = two_nodes();
        let n1 = fabric.nic(NodeId(1));
        let hits = Rc::new(Cell::new(0u32));
        {
            let hits = Rc::clone(&hits);
            n1.set_rx_callback(move || hits.set(hits.get() + 1));
        }
        let n0 = fabric.nic(NodeId(0));
        n0.tx(NodeId(1), 64, 1);
        n0.tx(NodeId(1), 64, 2);
        sim.run();
        assert_eq!(hits.get(), 2);
    }

    fn faulty(plan: crate::params::FaultPlan) -> (Sim, Rc<Fabric<u32>>) {
        let sim = Sim::new(3);
        let topo = Rc::new(Topology::new(2, 1, 1));
        let mut params = FabricParams::myri10g();
        params.fault = plan;
        let fabric = Fabric::new(sim.clone(), topo, params);
        (sim, fabric)
    }

    #[test]
    fn targeted_drop_suppresses_delivery() {
        let plan = crate::params::FaultPlan {
            drop_frames: vec![0],
            ..Default::default()
        };
        let (sim, fabric) = faulty(plan);
        let n0 = fabric.nic(NodeId(0));
        n0.tx(NodeId(1), 64, 1);
        n0.tx(NodeId(1), 64, 2);
        sim.run();
        let n1 = fabric.nic(NodeId(1));
        assert_eq!(n1.rx_poll().unwrap().payload, 2);
        assert!(n1.rx_poll().is_none());
        assert_eq!(n1.counters().faults_dropped, 1);
        // The sender saw both frames leave.
        assert_eq!(n0.counters().tx_frames, 2);
    }

    #[test]
    fn targeted_duplicate_delivers_twice() {
        let plan = crate::params::FaultPlan {
            dup_frames: vec![0],
            ..Default::default()
        };
        let (sim, fabric) = faulty(plan);
        fabric.nic(NodeId(0)).tx(NodeId(1), 64, 7);
        sim.run();
        let n1 = fabric.nic(NodeId(1));
        assert_eq!(n1.rx_poll().unwrap().payload, 7);
        assert_eq!(n1.rx_poll().unwrap().payload, 7);
        assert_eq!(n1.counters().faults_duplicated, 1);
        assert_eq!(n1.counters().rx_frames, 2);
    }

    #[test]
    fn targeted_delay_reorders_the_link() {
        let plan = crate::params::FaultPlan {
            delay_frames: vec![0],
            delay: SimDuration::from_micros(20),
            ..Default::default()
        };
        let (sim, fabric) = faulty(plan);
        let n0 = fabric.nic(NodeId(0));
        n0.tx(NodeId(1), 64, 1);
        n0.tx(NodeId(1), 64, 2);
        sim.run();
        let n1 = fabric.nic(NodeId(1));
        // The delayed first frame is overtaken by the second.
        assert_eq!(n1.rx_poll().unwrap().payload, 2);
        assert_eq!(n1.rx_poll().unwrap().payload, 1);
        assert_eq!(n1.counters().faults_delayed, 1);
    }

    #[test]
    fn corrupt_frames_fail_crc_and_vanish() {
        let plan = crate::params::FaultPlan {
            corrupt_frames: vec![0],
            ..Default::default()
        };
        let (sim, fabric) = faulty(plan);
        fabric.nic(NodeId(0)).tx(NodeId(1), 64, 9);
        sim.run();
        let n1 = fabric.nic(NodeId(1));
        assert!(n1.rx_poll().is_none());
        assert_eq!(n1.counters().faults_corrupted, 1);
        assert_eq!(n1.counters().rx_frames, 0);
    }

    #[test]
    fn stall_window_holds_frames_until_release() {
        let plan = crate::params::FaultPlan {
            stalls: vec![crate::params::StallWindow {
                node: Some(1),
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_micros(50),
            }],
            ..Default::default()
        };
        let (sim, fabric) = faulty(plan);
        fabric.nic(NodeId(0)).tx(NodeId(1), 64, 4);
        sim.run();
        assert_eq!(sim.now().as_micros(), 50);
        let n1 = fabric.nic(NodeId(1));
        assert_eq!(n1.rx_poll().unwrap().payload, 4);
        assert_eq!(n1.counters().faults_stalled, 1);
    }

    #[test]
    fn rate_faults_replay_identically_per_seed() {
        fn run(seed: u64) -> NicCounters {
            let plan = crate::params::FaultPlan {
                seed,
                drop_rate: 0.3,
                dup_rate: 0.2,
                ..Default::default()
            };
            let (sim, fabric) = faulty(plan);
            let n0 = fabric.nic(NodeId(0));
            for i in 0..50 {
                n0.tx(NodeId(1), 64, i);
            }
            sim.run();
            fabric.nic(NodeId(1)).counters()
        }
        let a = run(17);
        assert_eq!(a, run(17));
        assert!(a.faults_dropped > 0 && a.faults_duplicated > 0);
        assert_ne!(a, run(18));
    }

    #[test]
    fn counters_track_both_directions() {
        let (sim, fabric) = two_nodes();
        let n0 = fabric.nic(NodeId(0));
        let n1 = fabric.nic(NodeId(1));
        n0.tx(NodeId(1), 100, 1);
        n1.tx(NodeId(0), 200, 2);
        sim.run();
        let _ = n0.rx_poll();
        assert_eq!(n0.counters().tx_bytes, 100);
        assert_eq!(n0.counters().rx_bytes, 200);
        assert_eq!(n0.counters().polls, 1);
        assert_eq!(n1.counters().rx_frames, 1);
    }
}
