//! Interconnect cost model, calibrated to the paper's MYRI-10G testbed.

use pm2_sim::{SimDuration, SimTime};

/// A rail going dark: frames bound for `node` (or for every node when
/// `node` is `None`) whose delivery would land inside `[from, until)` are
/// held in the switch and released at `until`, in their original order.
#[derive(Debug, Clone)]
pub struct StallWindow {
    /// Destination node affected, or `None` for the whole rail.
    pub node: Option<usize>,
    /// Start of the dark period.
    pub from: SimTime,
    /// End of the dark period (frames are released here).
    pub until: SimTime,
}

/// Seeded, deterministic fault-injection plan for one fabric (rail).
///
/// Faults come in two flavours that compose freely:
///
/// * **rate-based**: each transmitted frame independently draws from the
///   plan's own [`Xoshiro256`](pm2_sim::rng::Xoshiro256) stream (seeded by
///   [`FaultPlan::seed`], disjoint from the simulation RNG so enabling
///   faults never perturbs happy-path timing) and may be dropped,
///   duplicated, reorder-delayed or corrupted; `window` restricts the
///   draws to frames *sent* inside the interval;
/// * **targeted**: `drop_frames` & friends name exact frame indices in the
///   fabric-global transmission order, which is how the scenario tests hit
///   "the CTS of this rendezvous" deterministically.
///
/// An empty (default) plan is inert: the fabric takes the exact same code
/// path as before the reliability work, byte-identical timing included.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the simulation seed).
    pub seed: u64,
    /// Probability that a frame is silently dropped on the wire.
    pub drop_rate: f64,
    /// Probability that a frame is delivered twice.
    pub dup_rate: f64,
    /// Probability that a frame is held back by [`FaultPlan::delay`],
    /// letting later frames of the same link overtake it (reordering).
    pub delay_rate: f64,
    /// Probability that a frame arrives corrupted: the NIC verifies the
    /// CRC and discards it, so the protocol sees it as a loss.
    pub corrupt_rate: f64,
    /// Extra in-flight time for delayed frames.
    pub delay: SimDuration,
    /// If set, rate faults only apply to frames sent within the window.
    pub window: Option<(SimTime, SimTime)>,
    /// Exact fabric-global frame indices to drop.
    pub drop_frames: Vec<u64>,
    /// Exact frame indices to duplicate.
    pub dup_frames: Vec<u64>,
    /// Exact frame indices to reorder-delay by [`FaultPlan::delay`].
    pub delay_frames: Vec<u64>,
    /// Exact frame indices to corrupt (CRC-discarded at the receiver).
    pub corrupt_frames: Vec<u64>,
    /// Dark periods during which a rail buffers instead of delivering.
    pub stalls: Vec<StallWindow>,
}

impl FaultPlan {
    /// Uniform loss plan: every frame dropped with probability `rate`.
    pub fn loss(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// True if the plan can affect any frame. Inactive plans cost nothing
    /// and leave fabric timing bit-identical to a build without faults.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || self.corrupt_rate > 0.0
            || !self.drop_frames.is_empty()
            || !self.dup_frames.is_empty()
            || !self.delay_frames.is_empty()
            || !self.corrupt_frames.is_empty()
            || !self.stalls.is_empty()
    }
}

/// All virtual-time and CPU-cost parameters of the simulated fabric.
///
/// The defaults ([`FabricParams::myri10g`]) approximate a 2008-era Myrinet
/// MYRI-10G + MX 1.2.3 installation on 2.33 GHz Xeons:
///
/// * one-way small-message latency ≈ 3 µs (2.8 µs wire + host poll),
/// * sustained wire bandwidth ≈ 1.25 GB/s,
/// * host memcpy into registered memory ≈ 3 GB/s,
/// * PIO for messages up to 128 B,
/// * rendezvous above 32 kB ("Myrinet's MX driver uses a rendezvous
///   protocol for messages larger than 32kB", §2.3).
#[derive(Debug, Clone)]
pub struct FabricParams {
    // -- wire ------------------------------------------------------------
    /// One-way propagation + switch latency for any frame.
    pub wire_latency: SimDuration,
    /// Wire bandwidth in bytes per microsecond (1250 ≈ 10 Gbit/s).
    pub wire_bytes_per_us: f64,
    /// Fixed per-frame serialization overhead at the NIC egress.
    pub frame_overhead: SimDuration,
    /// Uniform multiplicative jitter on wire time: actual = nominal ×
    /// (1 ± jitter_frac). 0 disables jitter (deterministic timing).
    pub jitter_frac: f64,

    // -- host-side submission ---------------------------------------------
    /// Largest message sent by PIO (CPU writes payload to NIC registers).
    pub pio_threshold: usize,
    /// Fixed PIO cost.
    pub pio_base: SimDuration,
    /// Per-byte PIO cost (PIO is slow: the CPU drives every word).
    pub pio_bytes_per_us: f64,
    /// Host memcpy bandwidth into registered memory, bytes per µs.
    pub memcpy_bytes_per_us: f64,
    /// Fixed memcpy startup cost.
    pub memcpy_base: SimDuration,
    /// Cost of posting a DMA descriptor to the NIC.
    pub dma_setup: SimDuration,

    // -- host-side reception ------------------------------------------------
    /// CPU cost of one NIC poll (check completion queue).
    pub poll_cost: SimDuration,
    /// One-way cost of entering/leaving a blocking kernel call (the
    /// overhead of the method of [10]).
    pub syscall_cost: SimDuration,

    // -- registered memory ---------------------------------------------------
    /// Fixed cost of registering a buffer with the NIC (pinning pages).
    pub reg_base: SimDuration,
    /// Registration cost per registered byte (page-table walking).
    pub reg_bytes_per_us: f64,
    /// Cost of a registration-cache hit.
    pub reg_hit: SimDuration,
    /// Registration cache capacity in bytes.
    pub reg_cache_bytes: usize,

    // -- shared-memory channel ------------------------------------------------
    /// Latency of the intra-node mailbox (cache-coherence propagation).
    pub shm_latency: SimDuration,
    /// Intra-node copy bandwidth, bytes per µs.
    pub shm_bytes_per_us: f64,
    /// Fixed cost per shared-memory enqueue/dequeue.
    pub shm_base: SimDuration,

    // -- protocol constants -----------------------------------------------------
    /// Wire size of a control frame (RTS/CTS/acks).
    pub ctrl_frame_bytes: usize,

    // -- fault injection ---------------------------------------------------------
    /// Deterministic fault-injection plan (inert by default).
    pub fault: FaultPlan,
}

impl FabricParams {
    /// The MYRI-10G-era default model.
    pub fn myri10g() -> Self {
        FabricParams {
            wire_latency: SimDuration::from_nanos(2_800),
            wire_bytes_per_us: 1_250.0,
            frame_overhead: SimDuration::from_nanos(100),
            jitter_frac: 0.0,
            pio_threshold: 128,
            pio_base: SimDuration::from_nanos(300),
            pio_bytes_per_us: 500.0,
            memcpy_bytes_per_us: 3_000.0,
            memcpy_base: SimDuration::from_nanos(200),
            dma_setup: SimDuration::from_nanos(500),
            poll_cost: SimDuration::from_nanos(200),
            syscall_cost: SimDuration::from_nanos(1_500),
            reg_base: SimDuration::from_nanos(600),
            reg_bytes_per_us: 40_000.0,
            reg_hit: SimDuration::from_nanos(100),
            reg_cache_bytes: 16 << 20,
            shm_latency: SimDuration::from_nanos(200),
            shm_bytes_per_us: 6_000.0,
            shm_base: SimDuration::from_nanos(150),
            ctrl_frame_bytes: 64,
            fault: FaultPlan::default(),
        }
    }

    /// Wire transmission time of `bytes` (excluding latency), with the
    /// per-frame overhead.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        self.frame_overhead + SimDuration::from_micros_f64(bytes as f64 / self.wire_bytes_per_us)
    }

    /// Host CPU cost of submitting an eager message of `bytes`:
    /// PIO below the threshold, copy-into-registered + DMA post above.
    pub fn submit_cost(&self, bytes: usize) -> SimDuration {
        if bytes <= self.pio_threshold {
            self.pio_base + SimDuration::from_micros_f64(bytes as f64 / self.pio_bytes_per_us)
        } else {
            self.memcpy_base
                + SimDuration::from_micros_f64(bytes as f64 / self.memcpy_bytes_per_us)
                + self.dma_setup
        }
    }

    /// Host memcpy cost for `bytes` (e.g. unexpected-queue to app buffer).
    pub fn memcpy_cost(&self, bytes: usize) -> SimDuration {
        self.memcpy_base + SimDuration::from_micros_f64(bytes as f64 / self.memcpy_bytes_per_us)
    }

    /// CPU cost of a shared-memory copy of `bytes` (one side).
    pub fn shm_copy_cost(&self, bytes: usize) -> SimDuration {
        self.shm_base + SimDuration::from_micros_f64(bytes as f64 / self.shm_bytes_per_us)
    }

    /// Cost of registering `bytes` on a cache miss.
    pub fn reg_miss_cost(&self, bytes: usize) -> SimDuration {
        self.reg_base + SimDuration::from_micros_f64(bytes as f64 / self.reg_bytes_per_us)
    }
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams::myri10g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_uses_pio_below_threshold() {
        let p = FabricParams::myri10g();
        let pio = p.submit_cost(64);
        let dma = p.submit_cost(256);
        // 64 B PIO: 0.3 + 0.128 µs; 256 B copy+DMA: 0.2 + 0.085 + 0.5 µs.
        assert!(pio.as_nanos() < 500);
        assert!(dma > pio);
    }

    #[test]
    fn submit_cost_grows_with_size() {
        let p = FabricParams::myri10g();
        let c8k = p.submit_cost(8 << 10);
        let c32k = p.submit_cost(32 << 10);
        assert!(c32k > c8k * 3);
        // 32 kB at 3 GB/s ≈ 10.9 µs + fixed: "dozens of microseconds".
        assert!(c32k.as_micros() >= 10 && c32k.as_micros() <= 20);
    }

    #[test]
    fn wire_time_matches_bandwidth() {
        let p = FabricParams::myri10g();
        // 128 kB at 1.25 GB/s ≈ 104.9 µs.
        let t = p.wire_time(128 << 10);
        assert!((t.as_micros_f64() - 105.0).abs() < 2.0, "{t}");
    }

    #[test]
    fn latency_in_myrinet_range() {
        let p = FabricParams::myri10g();
        let one_way = p.wire_latency + p.wire_time(0) + p.poll_cost;
        assert!(one_way.as_micros_f64() > 2.0 && one_way.as_micros_f64() < 4.0);
    }
}
