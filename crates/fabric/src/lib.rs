//! Simulated cluster interconnect: MX-like NICs, links, shared memory.
//!
//! The paper's testbed uses Myrinet MYRI-10G NICs driven by MX 1.2.3. No
//! such hardware exists here, so this crate models the pieces of that stack
//! the engine's mechanisms interact with (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * **Submission costs host CPU.** Sending a message means either PIO
//!   (very small messages, the CPU writes the payload to the NIC) or a copy
//!   into registered memory plus a DMA descriptor post. Either way the
//!   *submitting core* pays ([`Nic::submit_cost`]) — this is exactly the
//!   work §2.2 offloads to idle cores.
//! * **The wire is asynchronous.** Once fed, a frame is transmitted by the
//!   NIC without host involvement: egress serialization, per-link latency
//!   and bandwidth, optional jitter ([`FabricParams`]).
//! * **Reception requires host reactivity.** Arrived frames sit in the NIC
//!   receive queue until the host *polls* ([`Nic::rx_poll`]) or is woken
//!   from a *blocking call* ([`Nic::rx_trigger`], the method of [10] the
//!   paper contrasts with idle-core polling).
//! * **Zero-copy needs registered memory.** [`MemoryRegistry`] models the
//!   registration cache used by the rendezvous path.
//! * **Intra-node messages bypass the NIC** through a shared-memory
//!   channel ([`ShmChannel`]) with copy-in/copy-out CPU costs, as in the
//!   Table 1 meta-application.
//!
//! Frames are generic over a payload type `P` supplied by the protocol
//! layer (`pm2-newmad`), so the fabric stays protocol-agnostic — like MX
//! itself, which moves opaque messages.

#![warn(missing_docs)]

mod memory;
mod nic;
mod params;
mod shm;

pub use memory::{MemoryRegistry, RegistryStats};
pub use nic::{Fabric, Frame, Nic, NicCounters, TxInfo};
pub use params::{FabricParams, FaultPlan, StallWindow};
pub use shm::ShmChannel;
