//! Registered-memory (pinning) cache.

use crate::params::FabricParams;
use pm2_sim::SimDuration;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Statistics of a [`MemoryRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Registration requests that found the buffer already pinned.
    pub hits: u64,
    /// Registration requests that had to pin pages.
    pub misses: u64,
    /// Registrations evicted to make room.
    pub evictions: u64,
}

/// Models the NIC registration cache used by the zero-copy rendezvous
/// path.
///
/// High-performance NICs can only DMA to/from *registered* (pinned)
/// memory. Registering is expensive (a kernel call walking page tables),
/// so MX-era stacks keep an LRU cache of registrations. The rendezvous
/// protocol registers the application buffer on both sides; a warm cache
/// makes repeated transfers from the same buffers cheap.
///
/// Buffers are identified by an opaque `(id, len)` pair supplied by the
/// caller (standing in for the virtual address range).
pub struct MemoryRegistry {
    params: FabricParams,
    state: RefCell<RegistryState>,
}

struct RegistryState {
    /// LRU: most recently used at the back.
    entries: VecDeque<(u64, usize)>,
    bytes: usize,
    stats: RegistryStats,
}

impl MemoryRegistry {
    /// Creates an empty registry with the cache capacity from `params`.
    pub fn new(params: FabricParams) -> Self {
        MemoryRegistry {
            params,
            state: RefCell::new(RegistryState {
                entries: VecDeque::new(),
                bytes: 0,
                stats: RegistryStats::default(),
            }),
        }
    }

    /// Registers (or re-uses a registration of) buffer `id` of `len`
    /// bytes; returns the host CPU cost of the operation.
    pub fn register(&self, id: u64, len: usize) -> SimDuration {
        let mut st = self.state.borrow_mut();
        if let Some(pos) = st
            .entries
            .iter()
            .position(|&(eid, elen)| eid == id && elen >= len)
        {
            // Hit: refresh LRU position.
            let entry = st.entries.remove(pos).expect("position valid");
            st.entries.push_back(entry);
            st.stats.hits += 1;
            return self.params.reg_hit;
        }
        st.stats.misses += 1;
        // Evict until it fits (oversized buffers bypass the cache bound).
        while st.bytes + len > self.params.reg_cache_bytes && !st.entries.is_empty() {
            if let Some((_, elen)) = st.entries.pop_front() {
                st.bytes -= elen;
                st.stats.evictions += 1;
            }
        }
        st.entries.push_back((id, len));
        st.bytes += len;
        self.params.reg_miss_cost(len)
    }

    /// Explicitly forgets a buffer (e.g. the application freed it).
    pub fn deregister(&self, id: u64) {
        let mut st = self.state.borrow_mut();
        if let Some(pos) = st.entries.iter().position(|&(eid, _)| eid == id) {
            let (_, len) = st.entries.remove(pos).expect("position valid");
            st.bytes -= len;
        }
    }

    /// Bytes currently pinned.
    pub fn pinned_bytes(&self) -> usize {
        self.state.borrow().bytes
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RegistryStats {
        self.state.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(cache_bytes: usize) -> MemoryRegistry {
        let mut p = FabricParams::myri10g();
        p.reg_cache_bytes = cache_bytes;
        MemoryRegistry::new(p)
    }

    #[test]
    fn miss_then_hit() {
        let r = registry(1 << 20);
        let miss = r.register(1, 64 << 10);
        let hit = r.register(1, 64 << 10);
        assert!(miss > hit);
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().misses, 1);
        assert_eq!(r.pinned_bytes(), 64 << 10);
    }

    #[test]
    fn smaller_reuse_is_a_hit_larger_is_a_miss() {
        let r = registry(1 << 20);
        r.register(1, 64 << 10);
        let hit = r.register(1, 32 << 10);
        assert_eq!(hit, FabricParams::myri10g().reg_hit);
        let miss = r.register(1, 128 << 10);
        assert!(miss > hit);
        assert_eq!(r.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let r = registry(100);
        r.register(1, 60);
        r.register(2, 60); // evicts 1
        assert_eq!(r.stats().evictions, 1);
        r.register(2, 60);
        assert_eq!(r.stats().hits, 1);
        r.register(1, 60); // 1 was evicted: miss again
        assert_eq!(r.stats().misses, 3);
    }

    #[test]
    fn deregister_frees_bytes() {
        let r = registry(1 << 20);
        r.register(7, 1000);
        r.deregister(7);
        assert_eq!(r.pinned_bytes(), 0);
        r.register(7, 1000);
        assert_eq!(r.stats().misses, 2);
    }

    #[test]
    fn hit_refreshes_lru_order() {
        let r = registry(120);
        r.register(1, 60);
        r.register(2, 60);
        r.register(1, 60); // hit: 1 becomes most-recent
        r.register(3, 60); // evicts 2, not 1
        assert_eq!(r.register(1, 60), FabricParams::myri10g().reg_hit);
    }
}
