//! Intra-node shared-memory channel.

use crate::params::FabricParams;
use pm2_sim::{Sim, SimDuration, Trigger};
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A mailbox between threads of the same node.
///
/// The Table 1 meta-application generates "both intra-node and inter-node
/// communication requests which are either submitted to the network … or to
/// a shared-memory channel" (§4.3). The channel is a coherent-memory
/// queue: the sender copies the message in (CPU cost on the sending side),
/// the receiver copies it out (CPU cost on the receiving side), and
/// visibility takes a short cache-coherence latency.
pub struct ShmChannel<P> {
    node: NodeId,
    sim: Sim,
    params: FabricParams,
    queue: RefCell<VecDeque<P>>,
    trigger: RefCell<Trigger>,
    callback: RefCell<Option<Box<dyn Fn()>>>,
    pushed: RefCell<u64>,
    popped: RefCell<u64>,
}

impl<P: 'static> ShmChannel<P> {
    /// Creates the channel for `node`.
    pub fn new(sim: Sim, node: NodeId, params: FabricParams) -> Rc<Self> {
        Rc::new(ShmChannel {
            node,
            sim,
            params,
            queue: RefCell::new(VecDeque::new()),
            trigger: RefCell::new(Trigger::new()),
            callback: RefCell::new(None),
            pushed: RefCell::new(0),
            popped: RefCell::new(0),
        })
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// CPU cost of copying `bytes` into (or out of) the channel.
    pub fn copy_cost(&self, bytes: usize) -> SimDuration {
        self.params.shm_copy_cost(bytes)
    }

    /// Enqueues a message; it becomes visible after the coherence latency.
    /// The sender must charge [`ShmChannel::copy_cost`] separately.
    pub fn push(self: &Rc<Self>, msg: P) {
        self.push_after(msg, SimDuration::ZERO);
    }

    /// Enqueues a message whose copy-in takes `delay` of sender CPU time
    /// first; visibility follows the copy plus the coherence latency.
    pub fn push_after(self: &Rc<Self>, msg: P, delay: SimDuration) {
        let this = Rc::clone(self);
        self.sim
            .schedule_in(delay + self.params.shm_latency, move |_| {
                this.queue.borrow_mut().push_back(msg);
                *this.pushed.borrow_mut() += 1;
                this.trigger.borrow().fire();
                if let Some(cb) = this.callback.borrow().as_ref() {
                    cb();
                }
            });
    }

    /// Installs a callback invoked whenever a message becomes visible
    /// (same role as [`pm2's Nic::set_rx_callback`]: nudging idle cores).
    ///
    /// [`pm2's Nic::set_rx_callback`]: crate::Nic::set_rx_callback
    pub fn set_callback(&self, cb: impl Fn() + 'static) {
        *self.callback.borrow_mut() = Some(Box::new(cb));
    }

    /// Polls the mailbox. The receiver must charge
    /// [`ShmChannel::copy_cost`] for the payload it takes.
    pub fn poll(&self) -> Option<P> {
        let m = self.queue.borrow_mut().pop_front();
        if m.is_some() {
            *self.popped.borrow_mut() += 1;
        }
        m
    }

    /// True if a message is visible.
    pub fn pending(&self) -> bool {
        !self.queue.borrow().is_empty()
    }

    /// Trigger fired when a message becomes visible (pre-fired if one is
    /// already pending).
    pub fn trigger(&self) -> Trigger {
        let mut slot = self.trigger.borrow_mut();
        if self.queue.borrow().is_empty() && slot.is_fired() {
            *slot = Trigger::new();
        }
        slot.clone()
    }

    /// The shared-memory wake-up source for PIOMAN's blocking-call
    /// method (alias of [`ShmChannel::trigger`], mirroring
    /// `Nic::hw_trigger` so per-transport progress drivers treat both
    /// uniformly).
    pub fn hw_trigger(&self) -> Trigger {
        self.trigger()
    }

    /// (messages pushed, messages popped) so far.
    pub fn counters(&self) -> (u64, u64) {
        (*self.pushed.borrow(), *self.popped.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_visible_after_latency() {
        let sim = Sim::new(0);
        let ch: Rc<ShmChannel<u32>> =
            ShmChannel::new(sim.clone(), NodeId(0), FabricParams::myri10g());
        ch.push(5);
        assert!(!ch.pending(), "not visible before coherence latency");
        sim.run();
        assert_eq!(sim.now().as_nanos(), 200);
        assert_eq!(ch.poll(), Some(5));
        assert_eq!(ch.poll(), None);
        assert_eq!(ch.counters(), (1, 1));
    }

    #[test]
    fn fifo_order() {
        let sim = Sim::new(0);
        let ch: Rc<ShmChannel<u32>> =
            ShmChannel::new(sim.clone(), NodeId(0), FabricParams::myri10g());
        for i in 0..5 {
            ch.push(i);
        }
        sim.run();
        let got: Vec<u32> = std::iter::from_fn(|| ch.poll()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn trigger_semantics() {
        let sim = Sim::new(0);
        let ch: Rc<ShmChannel<u32>> =
            ShmChannel::new(sim.clone(), NodeId(0), FabricParams::myri10g());
        let t = ch.trigger();
        assert!(!t.is_fired());
        ch.push(1);
        sim.run();
        assert!(t.is_fired());
        assert!(ch.trigger().is_fired(), "pending message keeps it fired");
        let _ = ch.poll();
        assert!(!ch.trigger().is_fired(), "fresh trigger after drain");
    }

    #[test]
    fn copy_cost_scales() {
        let sim = Sim::new(0);
        let ch: Rc<ShmChannel<u32>> = ShmChannel::new(sim, NodeId(0), FabricParams::myri10g());
        assert!(ch.copy_cost(16 << 10) > ch.copy_cost(1 << 10));
    }
}
