//! Communication requests tracked by PIOMAN.

use pm2_sim::{obs::EventKind, Sim, SimTime, Trigger};
use std::cell::Cell;
use std::rc::Rc;

/// Why a request finished in an error state rather than with its payload.
///
/// Carried by the request itself so waiters observe the failure through
/// the normal completion path: `fail()` sets the error and then completes,
/// so `swait` loops (which poll `is_complete`) wake up instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqError {
    /// The reliability layer abandoned a frame this request was waiting
    /// on after exhausting its retry budget (the peer or rail is presumed
    /// dead).
    RetriesExhausted,
}

/// A request whose completion PIOMAN detects and signals.
///
/// Created by the communication library when the application posts an
/// operation (isend/irecv); completed by the library's progress callbacks
/// when the corresponding hardware event is detected. Threads wait on the
/// request through [`Pioman::wait`](crate::Pioman::wait), which either
/// makes progress inline or blocks on the request's [`Trigger`] — in the
/// latter case "PIOMAN … unblocks the corresponding thread and asks MARCEL
/// to schedule it" (§3.2).
#[derive(Clone)]
pub struct PiomReq {
    inner: Rc<ReqInner>,
}

struct ReqInner {
    id: u64,
    label: &'static str,
    trigger: Trigger,
    created_at: SimTime,
    completed_at: Cell<Option<SimTime>>,
    error: Cell<Option<ReqError>>,
}

impl PiomReq {
    /// Creates a pending request.
    pub fn new(sim: &Sim, label: &'static str) -> Self {
        PiomReq {
            inner: Rc::new(ReqInner {
                id: sim.obs().next_req_id(),
                label,
                trigger: Trigger::new(),
                created_at: sim.now(),
                completed_at: Cell::new(None),
                error: Cell::new(None),
            }),
        }
    }

    /// Simulation-unique request id (allocated at creation; pm2-obs events
    /// reference requests by this id).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Marks the request complete, waking all waiters. Idempotent.
    pub fn complete(&self, sim: &Sim) {
        if self.inner.completed_at.get().is_none() {
            let now = sim.now();
            self.inner.completed_at.set(Some(now));
            let latency_ns = now.saturating_since(self.inner.created_at).as_nanos();
            sim.obs().emit(
                now,
                None,
                EventKind::ReqComplete {
                    req: self.inner.id,
                    latency_ns,
                },
            );
            sim.obs().record_latency(self.inner.label, latency_ns);
            // pm2-verify: the completion record is the tracked write; the
            // trigger fire is its Release-publish. (is_complete() raw reads
            // model atomic flag loads and stay uninstrumented.)
            sim.verify().touch_write(self.inner.id);
            sim.verify().hb_publish(self.inner.id);
            self.inner.trigger.fire();
        }
    }

    /// Completes the request in an error state: records `err`, then runs
    /// the normal completion path so every waiter wakes. A request that
    /// already completed successfully is left untouched (the error would
    /// be a stale verdict — e.g. an ack that was lost after the payload
    /// was delivered). Idempotent like [`PiomReq::complete`].
    pub fn fail(&self, sim: &Sim, err: ReqError) {
        if self.inner.completed_at.get().is_none() {
            self.inner.error.set(Some(err));
            self.complete(sim);
        }
    }

    /// The typed error, if the request failed rather than completed.
    pub fn error(&self) -> Option<ReqError> {
        self.inner.error.get()
    }

    /// True once completed (successfully or with an error — check
    /// [`PiomReq::error`] to distinguish).
    pub fn is_complete(&self) -> bool {
        self.inner.completed_at.get().is_some()
    }

    /// The completion trigger (fires exactly once).
    pub fn trigger(&self) -> &Trigger {
        &self.inner.trigger
    }

    /// Diagnostic label ("isend", "rdv-rts", …).
    pub fn label(&self) -> &'static str {
        self.inner.label
    }

    /// When the request was posted.
    pub fn created_at(&self) -> SimTime {
        self.inner.created_at
    }

    /// When it completed, if it has.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.inner.completed_at.get()
    }

    /// Post-to-completion latency, if completed.
    pub fn latency(&self) -> Option<pm2_sim::SimDuration> {
        self.completed_at()
            .map(|t| t.saturating_since(self.inner.created_at))
    }
}

impl std::fmt::Debug for PiomReq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiomReq")
            .field("label", &self.inner.label)
            .field("complete", &self.is_complete())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_sim::SimDuration;

    #[test]
    fn lifecycle() {
        let sim = Sim::new(0);
        let req = PiomReq::new(&sim, "test");
        assert!(!req.is_complete());
        assert_eq!(req.latency(), None);
        sim.run_for(SimDuration::from_micros(4));
        req.complete(&sim);
        assert!(req.is_complete());
        assert!(req.trigger().is_fired());
        assert_eq!(req.latency().unwrap().as_micros(), 4);
    }

    #[test]
    fn complete_is_idempotent() {
        let sim = Sim::new(0);
        let req = PiomReq::new(&sim, "x");
        req.complete(&sim);
        let first = req.completed_at();
        sim.run_for(SimDuration::from_micros(1));
        req.complete(&sim);
        assert_eq!(req.completed_at(), first);
    }

    #[test]
    fn fail_completes_with_typed_error() {
        let sim = Sim::new(0);
        let req = PiomReq::new(&sim, "x");
        req.fail(&sim, ReqError::RetriesExhausted);
        assert!(req.is_complete());
        assert!(req.trigger().is_fired());
        assert_eq!(req.error(), Some(ReqError::RetriesExhausted));
    }

    #[test]
    fn fail_after_success_is_a_stale_verdict() {
        let sim = Sim::new(0);
        let req = PiomReq::new(&sim, "x");
        req.complete(&sim);
        req.fail(&sim, ReqError::RetriesExhausted);
        assert_eq!(req.error(), None);
    }

    #[test]
    fn clones_share_state() {
        let sim = Sim::new(0);
        let req = PiomReq::new(&sim, "x");
        let req2 = req.clone();
        req.complete(&sim);
        assert!(req2.is_complete());
    }
}
