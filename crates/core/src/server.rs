//! The PIOMAN server: deciding when and where progress runs.
//!
//! Since the sharded-progression refactor the server owns a *driver
//! registry*: each transport (NIC rail, shared-memory channel, …)
//! registers its own [`ProgressDriver`] and the server walks them with a
//! fair round-robin schedule, prioritising deferred submissions over
//! pure completion polling (see [`Pioman::attach_driver`]).

use crate::config::{LockModel, PiomanConfig};
use crate::req::PiomReq;
use pm2_marcel::{HookResult, Marcel, Priority, TaskletId, ThreadCtx, ThreadId};
use pm2_sim::obs::EventKind;
use pm2_sim::trace::Category;
use pm2_sim::{Sim, SimDuration, SimTime, Site, Trigger};
use pm2_topo::CoreId;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

/// Outcome of one driver progress step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Host CPU time the step consumed (polls, copies, NIC doorbells).
    pub cost: SimDuration,
    /// True if the step advanced some request (submitted, matched,
    /// completed…); false for an unproductive poll.
    pub did_work: bool,
}

impl Progress {
    /// An idle step: no work available, no CPU spent.
    pub const NONE: Progress = Progress {
        cost: SimDuration::ZERO,
        did_work: false,
    };
}

/// What one driver currently has outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverPending {
    /// Deferred submissions waiting to be fed to the hardware.
    pub submissions: bool,
    /// Posted requests whose completion must be detected by polling.
    pub armed: bool,
    /// Global age rank of the oldest deferred submission (lower = older).
    /// The registry uses it to reproduce a single FIFO submission order
    /// across independently-queued drivers; `None` means "unranked" and
    /// sorts last.
    pub oldest_submission: Option<u64>,
}

impl DriverPending {
    /// True if the driver needs progress calls at all.
    pub fn any(self) -> bool {
        self.submissions || self.armed
    }
}

/// Identifier of a driver registered with [`Pioman::attach_driver`].
///
/// Ids are stable for the lifetime of the server: detaching a driver
/// never renumbers the others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DriverId(pub usize);

/// Health snapshot of one driver (see
/// [`PiomanConfig::quarantine_after`]): how the registry's degraded-mode
/// valve currently sees it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverHealthReport {
    /// Consecutive unproductive completion polls since the last
    /// productive step (resets to zero whenever the driver does work).
    pub consecutive_unproductive: u32,
    /// Current back-off level: each quarantine without an intervening
    /// productive step doubles the next window.
    pub quarantine_level: u32,
    /// End of the active quarantine window, if one is in force.
    pub quarantined_until: Option<SimTime>,
    /// Total quarantine windows entered over the driver's lifetime.
    pub quarantines: u64,
}

/// Internal per-driver health state, parallel to the driver slots.
#[derive(Debug, Clone, Copy, Default)]
struct DriverHealth {
    consecutive_unproductive: u32,
    quarantine_level: u32,
    quarantined_until: Option<SimTime>,
    quarantines: u64,
}

/// The callbacks a communication library registers with PIOMAN.
///
/// "The use of callbacks in PIOMAN makes it generic: the network-dependent
/// code is supplied by the library using PIOMAN … not by PIOMAN itself"
/// (§3.2).
pub trait ProgressDriver {
    /// Performs at most one unit of progress (submit one pending request,
    /// poll one NIC, …) and reports its cost.
    fn progress(&self) -> Progress;
    /// What is outstanding (drives polling/arming decisions).
    fn pending(&self) -> DriverPending;
    /// A trigger that fires when the hardware has something to look at
    /// (models the completion of a blocking receive syscall). `None` if
    /// the hardware cannot wake a blocked thread.
    fn hw_trigger(&self) -> Option<Trigger>;
}

/// A per-application-thread injection queue: the "progress for all"
/// substrate.
///
/// An application thread stages work locally and [`inject`]s a costed
/// closure; the closure executes on *whoever runs progression next* — a
/// stolen idle core, the progress tasklet, the dedicated progress thread
/// ([`PiomanConfig::progress_thread`]), or an inline `wait`. Endpoints
/// are ordinary [`ProgressDriver`]s in the registry, so the oldest-first
/// submission rank replays the global injection order across per-thread
/// queues and the submission-burst valve applies unchanged.
///
/// [`inject`]: InjectionEndpoint::inject
pub struct InjectionEndpoint {
    driver: Rc<EndpointDriver>,
    id: DriverId,
    pioman: Pioman,
}

/// A deferred injection: global rank plus the costed closure.
type Injection = (u64, Box<dyn FnOnce() -> SimDuration>);

/// The registry-facing side of an [`InjectionEndpoint`]: a FIFO of
/// (rank, costed closure) pairs, drained one per progress call.
struct EndpointDriver {
    queue: RefCell<VecDeque<Injection>>,
}

impl ProgressDriver for EndpointDriver {
    fn progress(&self) -> Progress {
        // Take the item out before running it so a closure that re-enters
        // the endpoint (or the registry) never sees the queue borrowed.
        let item = self.queue.borrow_mut().pop_front();
        match item {
            Some((_, f)) => Progress {
                cost: f(),
                did_work: true,
            },
            None => Progress::NONE,
        }
    }

    fn pending(&self) -> DriverPending {
        let q = self.queue.borrow();
        DriverPending {
            submissions: !q.is_empty(),
            armed: false,
            oldest_submission: q.front().map(|(rank, _)| *rank),
        }
    }

    fn hw_trigger(&self) -> Option<Trigger> {
        None
    }
}

impl InjectionEndpoint {
    /// Enqueues one unit of deferred work. `f` runs exactly once, on the
    /// core that drains it, and returns the host-CPU cost charged to that
    /// core. `origin` is the injecting core (locality hint for the
    /// tasklet, as in [`Pioman::notify_work`]).
    pub fn inject(&self, origin: Option<CoreId>, f: impl FnOnce() -> SimDuration + 'static) {
        let rank = self.pioman.inner.endpoint_rank.get();
        self.pioman.inner.endpoint_rank.set(rank + 1);
        self.driver
            .queue
            .borrow_mut()
            .push_back((rank, Box::new(f)));
        self.pioman.notify_work(origin);
    }

    /// Closures injected but not yet drained.
    pub fn queued(&self) -> usize {
        self.driver.queue.borrow().len()
    }

    /// The endpoint's slot in the driver registry (for
    /// [`Pioman::driver_stats`]).
    pub fn driver_id(&self) -> DriverId {
        self.id
    }
}

/// Cumulative PIOMAN counters.
///
/// The same struct is used both for the global tally ([`Pioman::stats`])
/// and for the per-driver tallies ([`Pioman::driver_stats`]); in the
/// per-driver view only the three progress-site counters are meaningful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PiomanStats {
    /// Progress calls made inline by waiting threads.
    pub inline_progress: u64,
    /// Progress calls made from the idle hook.
    pub hook_progress: u64,
    /// Progress calls made from the progress tasklet.
    pub tasklet_progress: u64,
    /// Wake-ups of the blocking-call kernel thread.
    pub blocking_wakeups: u64,
    /// Progress attempts that found the global mutex held.
    pub lock_contentions: u64,
    /// Calls to [`Pioman::wait`].
    pub waits: u64,
    /// Longest run of consecutive submission steps the registry served
    /// before a completion poll (bounded by
    /// [`PiomanConfig::submission_burst_limit`]).
    pub max_submission_burst: u64,
    /// Progress calls made by the dedicated progress thread
    /// ([`PiomanConfig::progress_thread`]).
    pub thread_progress: u64,
}

struct Inner {
    sim: Sim,
    marcel: Marcel,
    cfg: PiomanConfig,
    /// Registered drivers; detached slots stay as `None` so ids remain
    /// stable.
    drivers: RefCell<Vec<Option<Rc<dyn ProgressDriver>>>>,
    /// Per-driver progress-site counters, parallel to `drivers`.
    driver_stats: RefCell<Vec<PiomanStats>>,
    /// Per-driver health/quarantine state, parallel to `drivers`.
    driver_health: RefCell<Vec<DriverHealth>>,
    /// Completion-poll rotor: the slot the next poll sweep starts from.
    rotor: Cell<usize>,
    /// Tie-break rotor between equally-old submitters.
    sub_rotor: Cell<usize>,
    /// Consecutive submission steps served since the last poll sweep.
    submission_burst: Cell<u32>,
    tasklet: Cell<Option<TaskletId>>,
    /// Global-mutex model: virtual time until which the library lock is
    /// held by some core.
    lock_held_until: Cell<SimTime>,
    /// Extra cost (syscall return) to charge to the next progress call.
    carried_cost: Cell<SimDuration>,
    watcher_active: Cell<bool>,
    stats: RefCell<PiomanStats>,
    /// Global rank counter shared by every injection endpoint, so the
    /// registry replays injection order across per-thread queues exactly
    /// as it replays pack order across per-transport queues.
    endpoint_rank: Cell<u64>,
    /// The dedicated progress thread, when
    /// [`PiomanConfig::progress_thread`] is set.
    progress_thread: Cell<Option<ThreadId>>,
}

/// Handle to one node's PIOMAN server (cheap to clone).
#[derive(Clone)]
pub struct Pioman {
    inner: Rc<Inner>,
}

#[derive(Clone, Copy)]
enum CallSite {
    Inline,
    Hook,
    Tasklet,
    /// The dedicated progress thread; reported to pm2-obs as offloaded
    /// (tasklet-class) progression, tallied separately in
    /// [`PiomanStats::thread_progress`].
    Thread,
}

impl CallSite {
    /// The pm2-obs progression-site tag of this call site.
    fn obs_site(self) -> Site {
        match self {
            CallSite::Inline => Site::Inline,
            CallSite::Hook => Site::Hook,
            CallSite::Tasklet | CallSite::Thread => Site::Tasklet,
        }
    }
}

impl Pioman {
    /// Creates the server, hooks it into `marcel` (idle hook, progress
    /// tasklet, timer trigger).
    pub fn new(marcel: &Marcel, cfg: PiomanConfig) -> Pioman {
        let inner = Rc::new(Inner {
            sim: marcel.sim().clone(),
            marcel: marcel.clone(),
            cfg,
            drivers: RefCell::new(Vec::new()),
            driver_stats: RefCell::new(Vec::new()),
            driver_health: RefCell::new(Vec::new()),
            rotor: Cell::new(0),
            sub_rotor: Cell::new(0),
            submission_burst: Cell::new(0),
            tasklet: Cell::new(None),
            lock_held_until: Cell::new(SimTime::ZERO),
            carried_cost: Cell::new(SimDuration::ZERO),
            watcher_active: Cell::new(false),
            stats: RefCell::new(PiomanStats::default()),
            endpoint_rank: Cell::new(0),
            progress_thread: Cell::new(None),
        });
        let pioman = Pioman {
            inner: Rc::clone(&inner),
        };

        // Progress tasklet: drains work whenever scheduled, rescheduling
        // itself while some driver still has something outstanding.
        let weak: Weak<Inner> = Rc::downgrade(&inner);
        let tasklet = marcel.create_tasklet("pioman-progress", move |run| {
            let Some(inner) = weak.upgrade() else { return };
            let pioman = Pioman { inner };
            let (p, who) = pioman.locked_progress(CallSite::Tasklet);
            if p.did_work {
                if let Some(DriverId(i)) = who {
                    run.note_shard(i as u32);
                }
            }
            let carried = pioman.inner.carried_cost.replace(SimDuration::ZERO);
            run.charge(p.cost + carried);
            let pending = pioman.drivers_pending();
            if pending.submissions || (p.did_work && pending.armed) {
                run.reschedule();
            }
        });
        inner.tasklet.set(Some(tasklet));

        // Idle hook: "Marcel schedules PIOMAN each time a core is idle".
        if inner.cfg.idle_poll {
            let weak = Rc::downgrade(&inner);
            marcel.register_idle_hook(move |_, _core| {
                let Some(inner) = weak.upgrade() else {
                    return HookResult::Nothing;
                };
                let pioman = Pioman { inner };
                let pending = pioman.drivers_pending();
                if !pending.any() {
                    return HookResult::Nothing;
                }
                let (p, who) = pioman.locked_progress(CallSite::Hook);
                if p.cost.is_zero() && !p.did_work {
                    HookResult::Armed
                } else if let (true, Some(DriverId(i))) = (p.did_work, who) {
                    HookResult::WorkedOn {
                        cost: p.cost,
                        shard: i as u32,
                    }
                } else {
                    HookResult::Worked(p.cost)
                }
            });
        }

        // Timer trigger: progress even when no core ever becomes idle.
        if inner.cfg.timer_poll {
            if let Some(tick) = marcel.config().timer_tick {
                let weak = Rc::downgrade(&inner);
                marcel.start_timer(tick, move |m| {
                    let Some(inner) = weak.upgrade() else { return };
                    let pioman = Pioman { inner };
                    if pioman.drivers_pending().any() {
                        if let Some(t) = pioman.inner.tasklet.get() {
                            m.tasklet_schedule(t, None);
                        }
                    }
                });
            }
        }

        // Dedicated progress thread (the zero-idle-core fallback): a
        // normal Marcel thread that busy-polls the registry while any
        // driver has work and parks when everything is quiet.
        // `notify_work` unparks it. Running as a plain high-priority
        // thread means it competes for a core like any application
        // thread — which is the point: it guarantees progression even
        // when every core is saturated by compute.
        if inner.cfg.progress_thread {
            let weak = Rc::downgrade(&inner);
            let id = marcel.spawn(
                "pioman-progress-thread",
                Priority::High,
                None,
                move |ctx| async move {
                    loop {
                        let Some(inner) = weak.upgrade() else { return };
                        let pioman = Pioman { inner };
                        if !pioman.drivers_pending().any() {
                            drop(pioman);
                            ctx.park().await;
                            continue;
                        }
                        let (p, _) = pioman.locked_progress(CallSite::Thread);
                        let carried = pioman.inner.carried_cost.replace(SimDuration::ZERO);
                        let pause = pioman.inner.cfg.inline_poll_pause;
                        let productive = p.did_work;
                        drop(pioman);
                        let mut cost = p.cost + carried;
                        if !productive {
                            // Unproductive poll: pace the busy loop so a
                            // waiting driver is not hammered at zero cost.
                            cost += pause;
                        }
                        if !cost.is_zero() {
                            ctx.compute(cost).await;
                        }
                        ctx.yield_now().await;
                    }
                },
            );
            inner.progress_thread.set(Some(id));
        }

        pioman
    }

    /// Registers one transport's callbacks and returns its stable id.
    ///
    /// Drivers are polled round-robin in registration order, so register
    /// them in the order sources should be scanned (e.g. NIC rails
    /// first, shared memory last).
    pub fn attach_driver(&self, driver: Rc<dyn ProgressDriver>) -> DriverId {
        let mut drivers = self.inner.drivers.borrow_mut();
        drivers.push(Some(driver));
        self.inner
            .driver_stats
            .borrow_mut()
            .push(PiomanStats::default());
        self.inner
            .driver_health
            .borrow_mut()
            .push(DriverHealth::default());
        DriverId(drivers.len() - 1)
    }

    /// Creates a per-application-thread [`InjectionEndpoint`] and
    /// registers it with the driver registry. Endpoints share one global
    /// rank counter, so injections from different threads drain in the
    /// order they were made.
    pub fn create_endpoint(&self) -> InjectionEndpoint {
        let driver = Rc::new(EndpointDriver {
            queue: RefCell::new(VecDeque::new()),
        });
        let id = self.attach_driver(Rc::clone(&driver) as Rc<dyn ProgressDriver>);
        InjectionEndpoint {
            driver,
            id,
            pioman: Pioman {
                inner: Rc::clone(&self.inner),
            },
        }
    }

    /// Unregisters a driver; its slot is retired (ids of the remaining
    /// drivers are unchanged). Returns false if `id` was already
    /// detached or never existed.
    pub fn detach_driver(&self, id: DriverId) -> bool {
        let mut drivers = self.inner.drivers.borrow_mut();
        match drivers.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Number of currently attached drivers.
    pub fn driver_count(&self) -> usize {
        self.inner
            .drivers
            .borrow()
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Progress-site counters attributed to one driver. Counters survive
    /// a detach. Returns default (all-zero) stats for unknown ids.
    pub fn driver_stats(&self, id: DriverId) -> PiomanStats {
        self.inner
            .driver_stats
            .borrow()
            .get(id.0)
            .copied()
            .unwrap_or_default()
    }

    /// Health snapshot of one driver (all-zero for unknown ids). An
    /// expired quarantine window reads as healthy: `quarantined_until`
    /// is only reported while the window is still in force.
    pub fn driver_health(&self, id: DriverId) -> DriverHealthReport {
        let now = self.inner.sim.now();
        self.inner
            .driver_health
            .borrow()
            .get(id.0)
            .map(|h| DriverHealthReport {
                consecutive_unproductive: h.consecutive_unproductive,
                quarantine_level: h.quarantine_level,
                quarantined_until: h.quarantined_until.filter(|&t| t > now),
                quarantines: h.quarantines,
            })
            .unwrap_or_default()
    }

    /// The drivers currently in a quarantine window (degraded mode):
    /// their completion polling is paused until the window expires, but
    /// submissions are still served. Empty when health tracking is
    /// disabled.
    pub fn degraded_drivers(&self) -> Vec<DriverId> {
        let now = self.inner.sim.now();
        let drivers = self.inner.drivers.borrow();
        self.inner
            .driver_health
            .borrow()
            .iter()
            .enumerate()
            .filter(|(i, h)| {
                drivers.get(*i).is_some_and(Option::is_some)
                    && h.quarantined_until.is_some_and(|t| t > now)
            })
            .map(|(i, _)| DriverId(i))
            .collect()
    }

    /// Health bookkeeping after a productive step by driver `pos`: the
    /// driver is alive, so any quarantine state is re-armed from scratch.
    fn note_driver_work(&self, pos: usize) {
        if self.inner.cfg.quarantine_after.is_none() {
            return;
        }
        if let Some(h) = self.inner.driver_health.borrow_mut().get_mut(pos) {
            h.consecutive_unproductive = 0;
            h.quarantine_level = 0;
            h.quarantined_until = None;
        }
    }

    /// Health bookkeeping after an unproductive completion poll of driver
    /// `pos`: count it, and once the configured threshold is hit open a
    /// quarantine window (doubling per consecutive quarantine) with a
    /// probe scheduled at expiry so the driver is re-polled even on an
    /// otherwise idle node.
    fn note_driver_timeout(&self, pos: usize) {
        let Some(threshold) = self.inner.cfg.quarantine_after else {
            return;
        };
        let now = self.inner.sim.now();
        let until = {
            let mut health = self.inner.driver_health.borrow_mut();
            let Some(h) = health.get_mut(pos) else { return };
            h.consecutive_unproductive += 1;
            if h.consecutive_unproductive < threshold {
                return;
            }
            let shift = h
                .quarantine_level
                .min(self.inner.cfg.quarantine_max_shift)
                .min(63);
            let window = SimDuration::from_nanos(
                self.inner
                    .cfg
                    .quarantine_backoff
                    .as_nanos()
                    .saturating_mul(1u64 << shift),
            );
            let until = now + window;
            h.quarantined_until = Some(until);
            h.quarantine_level += 1;
            h.quarantines += 1;
            h.consecutive_unproductive = 0;
            until
        };
        self.inner.sim.trace().emit_with(now, Category::Pioman, || {
            format!("driver {pos} quarantined until {until}")
        });
        // The expiry probe: without it a fully idle node would never
        // notice the window has passed and the driver would stay
        // effectively dead.
        let weak = Rc::downgrade(&self.inner);
        self.inner.sim.schedule_at(until, move |_| {
            if let Some(inner) = weak.upgrade() {
                let pioman = Pioman { inner };
                if pioman.drivers_pending().any() {
                    pioman.notify_work(None);
                }
            }
        });
    }

    /// True while driver `pos` sits in an unexpired quarantine window.
    fn driver_quarantined(&self, pos: usize) -> bool {
        if self.inner.cfg.quarantine_after.is_none() {
            return false;
        }
        let now = self.inner.sim.now();
        self.inner
            .driver_health
            .borrow()
            .get(pos)
            .is_some_and(|h| h.quarantined_until.is_some_and(|t| t > now))
    }

    /// The scheduler this server is attached to.
    pub fn marcel(&self) -> &Marcel {
        &self.inner.marcel
    }

    /// Configuration in use.
    pub fn config(&self) -> &PiomanConfig {
        &self.inner.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PiomanStats {
        *self.inner.stats.borrow()
    }

    /// Union of every attached driver's pending state.
    fn drivers_pending(&self) -> DriverPending {
        let drivers = self.inner.drivers.borrow();
        let mut acc = DriverPending::default();
        for d in drivers.iter().flatten() {
            let p = d.pending();
            acc.submissions |= p.submissions;
            acc.armed |= p.armed;
            acc.oldest_submission = match (acc.oldest_submission, p.oldest_submission) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        acc
    }

    /// The library posted new work (e.g. an asynchronous send was
    /// registered): get an idle core onto it as soon as possible.
    ///
    /// `origin` is the core that posted the work; the tasklet prefers a
    /// nearby idle core (cache locality) and its invocation from a
    /// different core costs the 2 µs cross-CPU penalty measured in §4.1.
    pub fn notify_work(&self, origin: Option<CoreId>) {
        if let Some(t) = self.inner.tasklet.get() {
            self.inner.marcel.tasklet_schedule(t, origin);
        }
        if let Some(th) = self.inner.progress_thread.get() {
            self.inner.marcel.unpark(th);
        }
        self.ensure_watcher();
    }

    /// Wakes the dedicated progress thread if one exists and is parked
    /// (no-op otherwise). The communication library calls this from its
    /// frame-arrival doorbell: idle-core kicks cannot reach the thread —
    /// it blocks parked, not idle.
    pub fn wake_progress_thread(&self) {
        if let Some(th) = self.inner.progress_thread.get() {
            self.inner.marcel.unpark(th);
        }
    }

    /// One scheduling decision of the registry: either feed the oldest
    /// deferred submission to its driver, or run one completion-poll
    /// sweep of the armed drivers.
    ///
    /// Submissions win over polling (the hardware should never sit idle
    /// while requests wait in software queues), except that after
    /// [`PiomanConfig::submission_burst_limit`] consecutive submission
    /// steps one poll sweep is forced so a submission flood cannot starve
    /// completion detection.
    ///
    /// The poll sweep scans drivers round-robin from the rotor, skipping
    /// drivers with nothing armed; the first driver that reports work
    /// ends the sweep (the unproductive scan costs of the drivers before
    /// it are discarded — scanning an empty source is free). If nobody
    /// worked, the sweep charges the most expensive unproductive poll.
    fn registry_progress(&self) -> (Progress, Option<DriverId>) {
        let drivers: Vec<Option<Rc<dyn ProgressDriver>>> = self.inner.drivers.borrow().clone();
        let n = drivers.len();
        if n == 0 {
            return (Progress::NONE, None);
        }
        let pendings: Vec<DriverPending> = drivers
            .iter()
            .map(|s| s.as_ref().map(|d| d.pending()).unwrap_or_default())
            .collect();

        // Phase 1: deferred submissions, oldest first across all queues.
        let burst = self.inner.submission_burst.get();
        if burst < self.inner.cfg.submission_burst_limit {
            let mut best: Option<(u64, usize)> = None;
            for k in 0..n {
                let pos = (self.inner.sub_rotor.get() + k) % n;
                if !pendings[pos].submissions {
                    continue;
                }
                let rank = pendings[pos].oldest_submission.unwrap_or(u64::MAX);
                if best.is_none_or(|(r, _)| rank < r) {
                    best = Some((rank, pos));
                }
            }
            if let Some((_, pos)) = best {
                let p = drivers[pos].as_ref().unwrap().progress();
                if p.did_work {
                    self.note_driver_work(pos);
                }
                let burst = burst + 1;
                self.inner.submission_burst.set(burst);
                let mut st = self.inner.stats.borrow_mut();
                st.max_submission_burst = st.max_submission_burst.max(burst as u64);
                drop(st);
                self.inner.sub_rotor.set((pos + 1) % n);
                return (p, Some(DriverId(pos)));
            }
        }
        self.inner.submission_burst.set(0);

        // Phase 2: completion polling, fair rotor over armed drivers.
        let rotor = self.inner.rotor.get();
        let mut worst = SimDuration::ZERO;
        let mut worst_pos = None;
        for k in 0..n {
            let pos = (rotor + k) % n;
            if !pendings[pos].armed {
                continue;
            }
            // Degraded mode: a quarantined driver's polling is paused
            // until its back-off window expires (submissions above are
            // unaffected).
            if self.driver_quarantined(pos) {
                continue;
            }
            let p = drivers[pos].as_ref().unwrap().progress();
            if p.did_work {
                self.note_driver_work(pos);
                self.inner.rotor.set((pos + 1) % n);
                return (p, Some(DriverId(pos)));
            }
            self.note_driver_timeout(pos);
            if p.cost > worst {
                worst = p.cost;
                worst_pos = Some(pos);
            }
        }
        (
            Progress {
                cost: worst,
                did_work: false,
            },
            worst_pos.map(DriverId),
        )
    }

    /// One serialized progress step, honouring the lock model.
    fn locked_progress(&self, site: CallSite) -> (Progress, Option<DriverId>) {
        let now = self.inner.sim.now();
        let lock_cost = match self.inner.cfg.lock_model {
            LockModel::PerEventSpinlock => self.inner.cfg.spinlock_cost,
            LockModel::GlobalMutex => {
                if now < self.inner.lock_held_until.get() {
                    // Someone else is inside the library: spin and retry.
                    self.inner.stats.borrow_mut().lock_contentions += 1;
                    return (
                        Progress {
                            cost: self.inner.cfg.mutex_spin_cost,
                            did_work: false,
                        },
                        None,
                    );
                }
                self.inner.cfg.spinlock_cost
            }
        };
        // Tag the progression site for the duration of the pass, so layers
        // reached from driver callbacks (NIC submits, protocol handlers)
        // attribute their pm2-obs events to inline/hook/tasklet progress.
        let prev_site = self.inner.sim.obs().set_site(site.obs_site());
        let prev_vsite = self.inner.sim.verify().set_site(site.obs_site());
        // The registry walk is the serialized section the paper's per-event
        // spinlock / global mutex protects.
        self.inner.sim.verify().lock_acquire("pioman.registry");
        let (p, who) = self.registry_progress();
        self.inner.sim.verify().lock_release("pioman.registry");
        self.inner.sim.verify().set_site(prev_vsite);
        self.inner.sim.obs().set_site(prev_site);
        let cost = if p.cost.is_zero() && !p.did_work {
            // Nothing even worth polling.
            SimDuration::ZERO
        } else {
            p.cost + lock_cost
        };
        if self.inner.cfg.lock_model == LockModel::GlobalMutex && !cost.is_zero() {
            self.inner.lock_held_until.set(now + cost);
        }
        {
            let mut st = self.inner.stats.borrow_mut();
            match site {
                CallSite::Inline => st.inline_progress += 1,
                CallSite::Hook => st.hook_progress += 1,
                CallSite::Tasklet => st.tasklet_progress += 1,
                CallSite::Thread => st.thread_progress += 1,
            }
        }
        if let Some(DriverId(i)) = who {
            let mut ds = self.inner.driver_stats.borrow_mut();
            if let Some(st) = ds.get_mut(i) {
                match site {
                    CallSite::Inline => st.inline_progress += 1,
                    CallSite::Hook => st.hook_progress += 1,
                    CallSite::Tasklet => st.tasklet_progress += 1,
                    CallSite::Thread => st.thread_progress += 1,
                }
            }
        }
        if p.did_work {
            if let Some(DriverId(i)) = who {
                self.inner.sim.obs().emit(
                    now,
                    None,
                    EventKind::DriverProgress {
                        driver: i as u64,
                        site: site.obs_site(),
                        cost: cost.as_nanos(),
                    },
                );
            }
        }
        self.inner.sim.trace().emit_with(now, Category::Pioman, || {
            format!("progress cost={} did_work={}", cost, p.did_work)
        });
        (
            Progress {
                cost,
                did_work: p.did_work,
            },
            who,
        )
    }

    /// One trigger that fires when *any* attached driver's hardware has
    /// something to look at. Combines the per-driver triggers in
    /// registration order; multi-source combinations spawn one forwarder
    /// task per source.
    fn combined_hw_trigger(&self) -> Option<Trigger> {
        let drivers = self.inner.drivers.borrow();
        let mut trigs: Vec<Trigger> = Vec::new();
        for d in drivers.iter().flatten() {
            if let Some(t) = d.hw_trigger() {
                trigs.push(t);
            }
        }
        drop(drivers);
        if trigs.is_empty() {
            return None;
        }
        if trigs.iter().any(|t| t.is_fired()) {
            let t = Trigger::new();
            t.fire();
            return Some(t);
        }
        if trigs.len() == 1 {
            return trigs.pop();
        }
        let any = Trigger::new();
        for t in trigs {
            let a = any.clone();
            self.inner.sim.spawn(async move {
                t.wait().await;
                a.fire();
            });
        }
        Some(any)
    }

    /// Keeps a simulated kernel thread blocked on the hardware trigger
    /// while some driver is waiting for events (the method of [10]).
    fn ensure_watcher(&self) {
        if !self.inner.cfg.blocking_call || self.inner.watcher_active.get() {
            return;
        }
        if self.combined_hw_trigger().is_none() {
            return;
        }
        self.inner.watcher_active.set(true);
        let weak = Rc::downgrade(&self.inner);
        let sim = self.inner.sim.clone();
        let sim2 = sim.clone();
        sim.spawn_named(Some("pioman-blocking-watcher".into()), async move {
            loop {
                let Some(inner) = weak.upgrade() else { return };
                let pioman = Pioman { inner };
                if !pioman.drivers_pending().any() {
                    pioman.inner.watcher_active.set(false);
                    return;
                }
                let Some(trig) = pioman.combined_hw_trigger() else {
                    pioman.inner.watcher_active.set(false);
                    return;
                };
                let cfg = pioman.inner.cfg.clone();
                drop(pioman);
                trig.wait().await;
                // Interrupt delivery + kernel-thread scheduling latency.
                sim2.sleep(cfg.blocking_wake_latency).await;
                let Some(inner) = weak.upgrade() else { return };
                let pioman = Pioman { inner };
                pioman.inner.stats.borrow_mut().blocking_wakeups += 1;
                // The syscall return and re-entry are charged to the next
                // progress execution.
                pioman
                    .inner
                    .carried_cost
                    .set(pioman.inner.carried_cost.get() + cfg.syscall_cost * 2);
                if let Some(t) = pioman.inner.tasklet.get() {
                    pioman.inner.marcel.tasklet_schedule(t, None);
                }
                // Pace re-arming: re-entering the kernel is not free.
                drop(pioman);
                sim2.sleep(cfg.blocking_wake_latency).await;
            }
        });
    }

    /// Waits for every request in `reqs` (equivalent to waiting each in
    /// turn; progress made for one advances the others too).
    pub async fn wait_all(&self, reqs: &[PiomReq], ctx: &ThreadCtx) {
        for req in reqs {
            self.wait(req, ctx).await;
        }
    }

    /// Waits until *any* request completes; returns its index.
    ///
    /// Returns immediately with the first already-complete request if one
    /// exists.
    pub async fn wait_any(&self, reqs: &[PiomReq], ctx: &ThreadCtx) -> usize {
        assert!(!reqs.is_empty(), "wait_any on empty request set");
        loop {
            if let Some(i) = reqs.iter().position(PiomReq::is_complete) {
                self.inner.sim.verify().observe_complete(reqs[i].id());
                self.inner.marcel.note_req_done(reqs[i].id());
                return i;
            }
            let (p, _) = self.locked_progress(CallSite::Inline);
            if !p.cost.is_zero() {
                ctx.compute(p.cost).await;
            }
            if p.did_work {
                continue;
            }
            if !self.inner.cfg.can_progress_in_background() {
                ctx.compute(self.inner.cfg.inline_poll_pause).await;
                continue;
            }
            self.ensure_watcher();
            // Block on a trigger fired by whichever request finishes
            // first.
            let any = Trigger::new();
            for req in reqs {
                let t = any.clone();
                let trig = req.trigger().clone();
                self.inner.sim.spawn(async move {
                    trig.wait().await;
                    t.fire();
                });
            }
            // Advertise the furthest-along request as the one being
            // waited on: it is the likeliest to fire the fan-in trigger.
            let watched = reqs
                .iter()
                .max_by_key(|r| self.inner.marcel.comm_req_stage(r.id()))
                .expect("nonempty");
            self.inner.marcel.comm_wait_begin(ctx.id(), watched.id());
            ctx.block_until(&any, true).await;
            self.inner.marcel.comm_wait_end(ctx.id());
        }
    }

    /// Waits for `req` to complete, from Marcel thread `ctx`.
    ///
    /// The waiting thread first makes progress *inline* ("if the
    /// application reaches the wait function before the message has been
    /// submitted … the message is sent inside the wait function", §3.2);
    /// once nothing more can be done inline it blocks on the request's
    /// trigger, releasing its core so that PIOMAN can use it for polling.
    pub async fn wait(&self, req: &PiomReq, ctx: &ThreadCtx) {
        self.inner.stats.borrow_mut().waits += 1;
        loop {
            if req.is_complete() {
                self.inner.sim.verify().observe_complete(req.id());
                self.inner.marcel.note_req_done(req.id());
                return;
            }
            let (p, _) = self.locked_progress(CallSite::Inline);
            if !p.cost.is_zero() {
                ctx.compute(p.cost).await;
            }
            if req.is_complete() {
                self.inner.sim.verify().observe_complete(req.id());
                self.inner.marcel.note_req_done(req.id());
                return;
            }
            if p.did_work {
                continue;
            }
            if self.inner.cfg.can_progress_in_background() {
                self.ensure_watcher();
                // Let scheduling policies see which request this thread
                // blocks on (the comm-aware policy boosts it once the
                // request nears completion).
                self.inner.marcel.comm_wait_begin(ctx.id(), req.id());
                ctx.block_until(req.trigger(), true).await;
                self.inner.marcel.comm_wait_end(ctx.id());
            } else {
                // No one else will ever poll: busy-wait like a classical
                // MPI implementation.
                ctx.compute(self.inner.cfg.inline_poll_pause).await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_marcel::{MarcelConfig, Priority};
    use pm2_topo::{NodeId, Topology};
    use std::collections::VecDeque;

    /// A scriptable driver: a queue of work items (cost, completes-req),
    /// plus an "armed poll" that completes a request when a deadline
    /// passes. `log` (shared between drivers in multi-driver tests)
    /// records which driver each `progress()` call landed on.
    struct FakeDriver {
        sim: Sim,
        id: usize,
        log: Rc<RefCell<Vec<usize>>>,
        poll_cost: SimDuration,
        work: RefCell<VecDeque<(SimDuration, Option<PiomReq>)>>,
        armed: RefCell<Vec<(SimTime, PiomReq)>>,
        hw: RefCell<Option<Trigger>>,
    }

    impl FakeDriver {
        fn new(sim: &Sim) -> Rc<Self> {
            FakeDriver::with_id(sim, 0, Rc::new(RefCell::new(Vec::new())))
        }

        fn with_id(sim: &Sim, id: usize, log: Rc<RefCell<Vec<usize>>>) -> Rc<Self> {
            Rc::new(FakeDriver {
                sim: sim.clone(),
                id,
                log,
                poll_cost: SimDuration::from_nanos(200),
                work: RefCell::new(VecDeque::new()),
                armed: RefCell::new(Vec::new()),
                hw: RefCell::new(None),
            })
        }

        fn push_work(&self, cost: SimDuration, req: Option<PiomReq>) {
            self.work.borrow_mut().push_back((cost, req));
        }

        /// Arm a request that becomes detectable at `at`.
        fn arm(&self, at: SimTime, req: PiomReq) {
            self.armed.borrow_mut().push((at, req));
        }
    }

    impl ProgressDriver for FakeDriver {
        fn progress(&self) -> Progress {
            self.log.borrow_mut().push(self.id);
            if let Some((cost, req)) = self.work.borrow_mut().pop_front() {
                if let Some(r) = req {
                    r.complete(&self.sim);
                }
                return Progress {
                    cost,
                    did_work: true,
                };
            }
            let now = self.sim.now();
            let mut armed = self.armed.borrow_mut();
            if let Some(pos) = armed.iter().position(|(at, _)| *at <= now) {
                let (_, req) = armed.remove(pos);
                req.complete(&self.sim);
                return Progress {
                    cost: self.poll_cost,
                    did_work: true,
                };
            }
            if armed.is_empty() {
                Progress::NONE
            } else {
                Progress {
                    cost: self.poll_cost,
                    did_work: false,
                }
            }
        }

        fn pending(&self) -> DriverPending {
            DriverPending {
                submissions: !self.work.borrow().is_empty(),
                armed: !self.armed.borrow().is_empty(),
                oldest_submission: None,
            }
        }

        fn hw_trigger(&self) -> Option<Trigger> {
            self.hw.borrow().clone()
        }
    }

    fn setup(cores: usize, cfg: PiomanConfig) -> (Sim, Marcel, Pioman, Rc<FakeDriver>) {
        let sim = Sim::new(5);
        let topo = Rc::new(Topology::single_node(cores));
        let marcel = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::zero_cost());
        let pioman = Pioman::new(&marcel, cfg);
        let driver = FakeDriver::new(&sim);
        pioman.attach_driver(driver.clone() as Rc<dyn ProgressDriver>);
        (sim, marcel, pioman, driver)
    }

    #[test]
    fn work_is_offloaded_to_idle_core_during_compute() {
        let (sim, marcel, pioman, driver) = setup(2, PiomanConfig::default());
        let req = PiomReq::new(&sim, "send");
        driver.push_work(SimDuration::from_micros(5), Some(req.clone()));
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(20)).await;
            pioman2.wait(&req2, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // The 5µs submission ran on the idle second core during the 20µs
        // compute: total ≈ max(comm, comp) = 20µs (+ small overheads).
        assert!(done.get() >= 20 && done.get() < 22, "t={}", done.get());
        assert!(req.completed_at().unwrap().as_micros() < 10);
        assert!(pioman.stats().tasklet_progress >= 1);
    }

    #[test]
    fn work_runs_inline_in_wait_when_no_idle_core() {
        let (sim, marcel, pioman, driver) = setup(1, PiomanConfig::default());
        let req = PiomReq::new(&sim, "send");
        driver.push_work(SimDuration::from_micros(5), Some(req.clone()));
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(20)).await;
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // Single core: submission delayed into the wait: ≈ 20 + 5.
        assert!(done.get() >= 25 && done.get() < 27, "t={}", done.get());
        assert!(pioman.stats().inline_progress >= 1);
    }

    #[test]
    fn armed_poll_detected_by_idle_hook_while_thread_blocked() {
        let (sim, marcel, pioman, driver) = setup(1, PiomanConfig::default());
        let req = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(40), req.clone());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // Thread blocks; its own core polls via the idle hook; detection at
        // ~40µs plus one poll period.
        assert!(done.get() >= 40 && done.get() <= 42, "t={}", done.get());
        assert!(pioman.stats().hook_progress >= 2);
    }

    #[test]
    fn blocking_call_wakes_tasklet_when_idle_polling_disabled() {
        let cfg = PiomanConfig {
            idle_poll: false,
            timer_poll: false,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(2, cfg);
        let req = PiomReq::new(&sim, "recv");
        let hw = Trigger::new();
        *driver.hw.borrow_mut() = Some(hw.clone());
        driver.arm(SimTime::from_micros(30), req.clone());
        let hw2 = hw.clone();
        sim.schedule_in(SimDuration::from_micros(30), move |_| hw2.fire());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // 30µs event + 2µs interrupt latency + tasklet + syscall costs.
        assert!(done.get() >= 32 && done.get() <= 36, "t={}", done.get());
        assert_eq!(pioman.stats().blocking_wakeups, 1);
        assert!(pioman.stats().hook_progress == 0);
    }

    #[test]
    fn wait_busy_polls_when_all_background_disabled() {
        let cfg = PiomanConfig {
            idle_poll: false,
            timer_poll: false,
            blocking_call: false,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(1, cfg);
        let req = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(10), req.clone());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert!(done.get() >= 10 && done.get() <= 12, "t={}", done.get());
        assert!(pioman.stats().inline_progress > 5, "busy polling expected");
    }

    #[test]
    fn wait_any_returns_first_completion() {
        let (sim, marcel, pioman, driver) = setup(2, PiomanConfig::default());
        let slow = PiomReq::new(&sim, "slow");
        let fast = PiomReq::new(&sim, "fast");
        driver.arm(SimTime::from_micros(50), slow.clone());
        driver.arm(SimTime::from_micros(10), fast.clone());
        let winner = Rc::new(Cell::new(usize::MAX));
        let winner2 = Rc::clone(&winner);
        let pioman2 = pioman.clone();
        let reqs = vec![slow.clone(), fast.clone()];
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            winner2.set(pioman2.wait_any(&reqs, &ctx).await);
        });
        sim.run();
        assert_eq!(winner.get(), 1, "the fast request should win");
        assert!(fast.is_complete());
    }

    #[test]
    fn wait_all_completes_everything() {
        let (sim, marcel, pioman, driver) = setup(2, PiomanConfig::default());
        let reqs: Vec<PiomReq> = (0..4).map(|_| PiomReq::new(&sim, "r")).collect();
        for (i, r) in reqs.iter().enumerate() {
            driver.arm(SimTime::from_micros(10 * (i as u64 + 1)), r.clone());
        }
        let done_at = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done_at);
        let pioman2 = pioman.clone();
        let reqs2 = reqs.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait_all(&reqs2, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert!(reqs.iter().all(PiomReq::is_complete));
        assert!(
            done_at.get() >= 40 && done_at.get() <= 43,
            "t={}",
            done_at.get()
        );
    }

    #[test]
    fn global_mutex_serializes_and_counts_contention() {
        let cfg = PiomanConfig {
            lock_model: LockModel::GlobalMutex,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(4, cfg);
        // Lots of costly work items: multiple idle cores will try to
        // process them concurrently and contend on the global lock.
        let reqs: Vec<PiomReq> = (0..8).map(|_| PiomReq::new(&sim, "w")).collect();
        for r in &reqs {
            driver.push_work(SimDuration::from_micros(3), Some(r.clone()));
        }
        let pioman2 = pioman.clone();
        let last = reqs.last().unwrap().clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(1)).await;
            pioman2.wait(&last, &ctx).await;
        });
        sim.run();
        assert!(
            pioman.stats().lock_contentions > 0,
            "idle cores should have contended: {:?}",
            pioman.stats()
        );
        // All work completed despite contention: ≥ 8×3µs serialized.
        assert!(sim.now().as_micros() >= 24);
    }

    #[test]
    fn spinlock_model_processes_concurrently() {
        let (sim, marcel, pioman, driver) = setup(4, PiomanConfig::default());
        let reqs: Vec<PiomReq> = (0..8).map(|_| PiomReq::new(&sim, "w")).collect();
        for r in &reqs {
            driver.push_work(SimDuration::from_micros(3), Some(r.clone()));
        }
        let pioman2 = pioman.clone();
        let last = reqs.last().unwrap().clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(1)).await;
            pioman2.wait(&last, &ctx).await;
        });
        sim.run();
        assert_eq!(pioman.stats().lock_contentions, 0);
        // 8 items × 3µs over ≥3 workers: well under full serialization.
        assert!(
            sim.now().as_micros() <= 20,
            "expected concurrency, took {}µs",
            sim.now().as_micros()
        );
    }

    // ---- multi-driver registry ----

    type MultiSetup = (
        Sim,
        Marcel,
        Pioman,
        Vec<Rc<FakeDriver>>,
        Vec<DriverId>,
        Rc<RefCell<Vec<usize>>>,
    );

    fn setup_multi(cores: usize, cfg: PiomanConfig, n: usize) -> MultiSetup {
        let sim = Sim::new(5);
        let topo = Rc::new(Topology::single_node(cores));
        let marcel = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::zero_cost());
        let pioman = Pioman::new(&marcel, cfg);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut drivers = Vec::new();
        let mut ids = Vec::new();
        for i in 0..n {
            let d = FakeDriver::with_id(&sim, i, Rc::clone(&log));
            ids.push(pioman.attach_driver(d.clone() as Rc<dyn ProgressDriver>));
            drivers.push(d);
        }
        (sim, marcel, pioman, drivers, ids, log)
    }

    #[test]
    fn submissions_alternate_between_equal_rank_drivers() {
        let (sim, marcel, pioman, drivers, ids, log) = setup_multi(2, PiomanConfig::default(), 2);
        assert_eq!(ids, vec![DriverId(0), DriverId(1)]);
        let reqs: Vec<PiomReq> = (0..6).map(|_| PiomReq::new(&sim, "w")).collect();
        for (i, r) in reqs.iter().enumerate() {
            drivers[i % 2].push_work(SimDuration::from_micros(1), Some(r.clone()));
        }
        let pioman2 = pioman.clone();
        let last = reqs.last().unwrap().clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            pioman2.wait(&last, &ctx).await;
        });
        sim.run();
        assert!(reqs.iter().all(PiomReq::is_complete));
        // Unranked submitters are served round-robin by the tie-break
        // rotor: neither driver gets two turns in a row while both have
        // submissions queued.
        let first6: Vec<usize> = log.borrow().iter().copied().take(6).collect();
        assert_eq!(first6, vec![0, 1, 0, 1, 0, 1], "log={:?}", log.borrow());
    }

    #[test]
    fn ranked_submissions_replay_global_fifo_order() {
        let (sim, marcel, pioman, _drivers, ids, log) = setup_multi(2, PiomanConfig::default(), 2);
        // Ranked drivers: driver 1 holds the globally-oldest submission,
        // so it must be served first even though driver 0 is scanned
        // first.
        struct Ranked {
            id: usize,
            log: Rc<RefCell<Vec<usize>>>,
            queue: RefCell<VecDeque<u64>>,
        }
        impl ProgressDriver for Ranked {
            fn progress(&self) -> Progress {
                self.log.borrow_mut().push(self.id);
                self.queue.borrow_mut().pop_front();
                Progress {
                    cost: SimDuration::from_nanos(500),
                    did_work: true,
                }
            }
            fn pending(&self) -> DriverPending {
                DriverPending {
                    submissions: !self.queue.borrow().is_empty(),
                    armed: false,
                    oldest_submission: self.queue.borrow().front().copied(),
                }
            }
            fn hw_trigger(&self) -> Option<Trigger> {
                None
            }
        }
        pioman.detach_driver(ids[0]);
        pioman.detach_driver(ids[1]);
        let a = Rc::new(Ranked {
            id: 10,
            log: Rc::clone(&log),
            queue: RefCell::new(VecDeque::from([1, 4, 5])),
        });
        let b = Rc::new(Ranked {
            id: 11,
            log: Rc::clone(&log),
            queue: RefCell::new(VecDeque::from([0, 2, 3])),
        });
        pioman.attach_driver(a as Rc<dyn ProgressDriver>);
        pioman.attach_driver(b as Rc<dyn ProgressDriver>);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(20)).await;
        });
        sim.run();
        // Seq stamps 0..6 were spread b,a,b,b,a,a: the registry must
        // replay exactly that global order.
        assert_eq!(log.borrow().as_slice(), &[11, 10, 11, 11, 10, 10]);
    }

    #[test]
    fn idle_drivers_are_never_polled() {
        let (sim, marcel, pioman, drivers, _ids, log) = setup_multi(1, PiomanConfig::default(), 3);
        let req = PiomReq::new(&sim, "recv");
        drivers[1].arm(SimTime::from_micros(10), req.clone());
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req2, &ctx).await;
        });
        sim.run();
        assert!(req.is_complete());
        // Drivers 0 and 2 never had anything pending: the rotor sweep
        // must skip them without a progress call.
        assert!(
            log.borrow().iter().all(|&i| i == 1),
            "log={:?}",
            log.borrow()
        );
        assert!(!log.borrow().is_empty());
    }

    #[test]
    fn detached_driver_is_skipped_and_ids_stay_stable() {
        let (sim, marcel, pioman, drivers, ids, log) = setup_multi(1, PiomanConfig::default(), 2);
        assert_eq!(pioman.driver_count(), 2);
        assert!(pioman.detach_driver(ids[0]));
        assert!(!pioman.detach_driver(ids[0]), "double detach must fail");
        assert_eq!(pioman.driver_count(), 1);
        // Work queued on the detached driver is never progressed…
        drivers[0].push_work(SimDuration::from_micros(1), None);
        // …while the surviving driver keeps its id and keeps working.
        let req = PiomReq::new(&sim, "recv");
        drivers[1].arm(SimTime::from_micros(5), req.clone());
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req2, &ctx).await;
        });
        sim.run();
        assert!(req.is_complete());
        assert!(
            log.borrow().iter().all(|&i| i == 1),
            "log={:?}",
            log.borrow()
        );
        assert_eq!(drivers[0].work.borrow().len(), 1);
        assert!(pioman.driver_stats(ids[1]).hook_progress > 0);
    }

    #[test]
    fn per_driver_stats_attribute_progress_to_the_right_shard() {
        let (sim, marcel, pioman, drivers, ids, _log) = setup_multi(2, PiomanConfig::default(), 2);
        let reqs: Vec<PiomReq> = (0..5).map(|_| PiomReq::new(&sim, "w")).collect();
        // 2 items on driver 0, 3 on driver 1.
        for (i, r) in reqs.iter().enumerate() {
            drivers[if i < 2 { 0 } else { 1 }]
                .push_work(SimDuration::from_micros(1), Some(r.clone()));
        }
        let pioman2 = pioman.clone();
        let reqs2 = reqs.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            pioman2.wait_all(&reqs2, &ctx).await;
        });
        sim.run();
        let sum = |s: PiomanStats| s.inline_progress + s.hook_progress + s.tasklet_progress;
        assert_eq!(sum(pioman.driver_stats(ids[0])), 2);
        assert_eq!(sum(pioman.driver_stats(ids[1])), 3);
        // Global counters keep counting every call, attributed or not.
        assert!(sum(pioman.stats()) >= 5);
    }

    // ---- driver health / quarantine ----

    #[test]
    fn health_tracking_disabled_by_default() {
        let (sim, marcel, pioman, driver) = setup(1, PiomanConfig::default());
        let req = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(100), req.clone());
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req2, &ctx).await;
        });
        sim.run();
        assert!(req.is_complete());
        // Hundreds of unproductive polls happened, but with the valve off
        // nothing was counted and nobody was quarantined.
        let h = pioman.driver_health(DriverId(0));
        assert_eq!(h.quarantines, 0);
        assert_eq!(h.consecutive_unproductive, 0);
        assert!(pioman.degraded_drivers().is_empty());
    }

    #[test]
    fn stalled_driver_is_quarantined_then_recovers() {
        let cfg = PiomanConfig {
            quarantine_after: Some(8),
            quarantine_backoff: SimDuration::from_micros(20),
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(1, cfg);
        let req = PiomReq::new(&sim, "recv");
        // The event only becomes detectable at 500µs: plenty of polls
        // time out first, so the driver cycles through quarantine.
        driver.arm(SimTime::from_micros(500), req.clone());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req2, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert!(req.is_complete());
        let h = pioman.driver_health(DriverId(0));
        assert!(h.quarantines >= 1, "expected quarantine windows: {h:?}");
        // The productive poll at detection re-armed the driver.
        assert_eq!(h.quarantine_level, 0, "recovery must reset: {h:?}");
        assert!(h.quarantined_until.is_none());
        assert!(pioman.degraded_drivers().is_empty());
        // The expiry probes bound the detection delay: even with the
        // back-off capped at 20µs × 2⁶ = 1.28ms, the 500µs event is seen
        // within one window of its deadline.
        assert!(done.get() <= 2000, "detected too late: t={}µs", done.get());
    }

    #[test]
    fn quarantine_windows_back_off_exponentially() {
        let cfg = PiomanConfig {
            quarantine_after: Some(4),
            quarantine_backoff: SimDuration::from_micros(10),
            quarantine_max_shift: 3,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(1, cfg);
        let req = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(400), req.clone());
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req2, &ctx).await;
        });
        // Sample the quarantine level while the driver is still stalled.
        let pioman3 = pioman.clone();
        let level_mid = Rc::new(Cell::new(0u32));
        let level_mid2 = Rc::clone(&level_mid);
        sim.schedule_at(SimTime::from_micros(350), move |_| {
            level_mid2.set(pioman3.driver_health(DriverId(0)).quarantine_level);
        });
        sim.run();
        assert!(req.is_complete());
        // By 350µs several windows (10, 20, 40, 80 = capped…) have
        // elapsed, so the level climbed past 1.
        assert!(level_mid.get() >= 2, "level={}", level_mid.get());
        let h = pioman.driver_health(DriverId(0));
        assert!(h.quarantines >= 3, "expected repeated windows: {h:?}");
    }

    #[test]
    fn quarantined_driver_still_serves_submissions() {
        let cfg = PiomanConfig {
            quarantine_after: Some(4),
            quarantine_backoff: SimDuration::from_micros(200),
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(1, cfg);
        let stalled = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(500), stalled.clone());
        // Once the driver sits in a (long) quarantine window, post a
        // submission: it must be served promptly anyway.
        let sub = PiomReq::new(&sim, "send");
        let driver2 = driver.clone();
        let pioman2 = pioman.clone();
        let sub2 = sub.clone();
        sim.schedule_at(SimTime::from_micros(50), move |_| {
            assert!(
                !pioman2.degraded_drivers().is_empty(),
                "driver should be quarantined by 50µs"
            );
            driver2.push_work(SimDuration::from_micros(1), Some(sub2.clone()));
            pioman2.notify_work(None);
        });
        let pioman3 = pioman.clone();
        let stalled2 = stalled.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman3.wait(&stalled2, &ctx).await;
        });
        sim.run();
        assert!(stalled.is_complete());
        let sub_done = sub.completed_at().expect("submission served").as_micros();
        assert!(
            sub_done < 60,
            "submission stuck behind quarantine: {sub_done}µs"
        );
        // …and the productive submission re-armed the driver's health.
        assert_eq!(pioman.driver_health(DriverId(0)).quarantine_level, 0);
    }

    #[test]
    fn submission_flood_cannot_starve_completion_polling() {
        // Regression for the 3-driver starvation scenario: two drivers
        // flooding submissions while a third waits on an armed poll. The
        // burst valve must force completion sweeps through the flood.
        struct Flood {
            left: Cell<u64>,
        }
        impl ProgressDriver for Flood {
            fn progress(&self) -> Progress {
                self.left.set(self.left.get().saturating_sub(1));
                Progress {
                    cost: SimDuration::from_nanos(500),
                    did_work: true,
                }
            }
            fn pending(&self) -> DriverPending {
                DriverPending {
                    submissions: self.left.get() > 0,
                    armed: false,
                    oldest_submission: None,
                }
            }
            fn hw_trigger(&self) -> Option<Trigger> {
                None
            }
        }
        let cfg = PiomanConfig {
            submission_burst_limit: 4,
            ..PiomanConfig::default()
        };
        let sim = Sim::new(5);
        let topo = Rc::new(Topology::single_node(1));
        let marcel = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::zero_cost());
        let pioman = Pioman::new(&marcel, cfg);
        for _ in 0..2 {
            pioman.attach_driver(Rc::new(Flood {
                left: Cell::new(200),
            }) as Rc<dyn ProgressDriver>);
        }
        let victim = FakeDriver::new(&sim);
        pioman.attach_driver(victim.clone() as Rc<dyn ProgressDriver>);
        let req = PiomReq::new(&sim, "recv");
        victim.arm(SimTime::from_micros(2), req.clone());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            pioman2.wait(&req2, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert!(req.is_complete());
        // 400 flood items × 500ns ≈ 200µs of flood; the victim must be
        // detected shortly after its 2µs deadline, not after the flood.
        assert!(done.get() < 20, "victim starved until t={}µs", done.get());
        assert_eq!(pioman.stats().max_submission_burst, 4);
    }

    #[test]
    fn injection_endpoints_drain_in_global_injection_order() {
        let (sim, marcel, pioman, _driver) = setup(2, PiomanConfig::default());
        let ep_a = pioman.create_endpoint();
        let ep_b = pioman.create_endpoint();
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let req = PiomReq::new(&sim, "send");
        // Interleave injections across the two endpoints; drain order must
        // follow injection order, not endpoint registration order.
        for (i, ep) in [(0u32, &ep_a), (1, &ep_b), (2, &ep_b), (3, &ep_a)] {
            let order = Rc::clone(&order);
            let done = (i == 3).then(|| (req.clone(), sim.clone()));
            ep.inject(None, move || {
                order.borrow_mut().push(i);
                if let Some((req, sim)) = done {
                    req.complete(&sim);
                }
                SimDuration::from_nanos(400)
            });
        }
        assert_eq!(ep_a.queued() + ep_b.queued(), 4);
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req2, &ctx).await;
        });
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(ep_a.queued() + ep_b.queued(), 0);
        assert!(pioman.driver_stats(ep_a.driver_id()) != PiomanStats::default());
    }

    #[test]
    fn progress_thread_detects_armed_completion_without_idle_hook() {
        // Zero-idle-core fallback: idle hook, timer and blocking call all
        // disabled, the application thread computes without ever calling
        // into the library, and the armed completion (detectable only by
        // *polling*) arrives mid-compute. The tasklet cannot help — it
        // reschedules only while productive — so detection before the
        // compute ends proves the dedicated thread busy-polled.
        let cfg = PiomanConfig {
            idle_poll: false,
            timer_poll: false,
            blocking_call: false,
            progress_thread: true,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(2, cfg);
        let req = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(50), req.clone());
        marcel.spawn(
            "compute",
            Priority::Normal,
            Some(CoreId(0)),
            move |ctx| async move {
                ctx.compute(SimDuration::from_micros(100)).await;
            },
        );
        sim.run();
        assert!(req.is_complete(), "progress thread never polled the driver");
        let t = req.completed_at().unwrap().as_micros();
        assert!((50..52).contains(&t), "detected at t={t}µs");
        assert!(pioman.stats().thread_progress >= 1);
        assert_eq!(pioman.stats().hook_progress, 0);
    }
}
