//! The PIOMAN server: deciding when and where progress runs.

use crate::config::{LockModel, PiomanConfig};
use crate::req::PiomReq;
use pm2_marcel::{HookResult, Marcel, TaskletId, ThreadCtx};
use pm2_sim::trace::Category;
use pm2_sim::{Sim, SimDuration, SimTime, Trigger};
use pm2_topo::CoreId;
use std::cell::{Cell, RefCell};
use std::rc::{Rc, Weak};

/// Outcome of one driver progress step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Host CPU time the step consumed (polls, copies, NIC doorbells).
    pub cost: SimDuration,
    /// True if the step advanced some request (submitted, matched,
    /// completed…); false for an unproductive poll.
    pub did_work: bool,
}

impl Progress {
    /// An idle step: no work available, no CPU spent.
    pub const NONE: Progress = Progress {
        cost: SimDuration::ZERO,
        did_work: false,
    };
}

/// What the driver currently has outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverPending {
    /// Deferred submissions waiting to be fed to the hardware.
    pub submissions: bool,
    /// Posted requests whose completion must be detected by polling.
    pub armed: bool,
}

impl DriverPending {
    /// True if the driver needs progress calls at all.
    pub fn any(self) -> bool {
        self.submissions || self.armed
    }
}

/// The callbacks a communication library registers with PIOMAN.
///
/// "The use of callbacks in PIOMAN makes it generic: the network-dependent
/// code is supplied by the library using PIOMAN … not by PIOMAN itself"
/// (§3.2).
pub trait ProgressDriver {
    /// Performs at most one unit of progress (submit one pending request,
    /// poll one NIC, …) and reports its cost.
    fn progress(&self) -> Progress;
    /// What is outstanding (drives polling/arming decisions).
    fn pending(&self) -> DriverPending;
    /// A trigger that fires when the hardware has something to look at
    /// (models the completion of a blocking receive syscall). `None` if
    /// the hardware cannot wake a blocked thread.
    fn hw_trigger(&self) -> Option<Trigger>;
}

/// Cumulative PIOMAN counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PiomanStats {
    /// Progress calls made inline by waiting threads.
    pub inline_progress: u64,
    /// Progress calls made from the idle hook.
    pub hook_progress: u64,
    /// Progress calls made from the progress tasklet.
    pub tasklet_progress: u64,
    /// Wake-ups of the blocking-call kernel thread.
    pub blocking_wakeups: u64,
    /// Progress attempts that found the global mutex held.
    pub lock_contentions: u64,
    /// Calls to [`Pioman::wait`].
    pub waits: u64,
}

struct Inner {
    sim: Sim,
    marcel: Marcel,
    cfg: PiomanConfig,
    driver: RefCell<Option<Rc<dyn ProgressDriver>>>,
    tasklet: Cell<Option<TaskletId>>,
    /// Global-mutex model: virtual time until which the library lock is
    /// held by some core.
    lock_held_until: Cell<SimTime>,
    /// Extra cost (syscall return) to charge to the next progress call.
    carried_cost: Cell<SimDuration>,
    watcher_active: Cell<bool>,
    stats: RefCell<PiomanStats>,
}

/// Handle to one node's PIOMAN server (cheap to clone).
#[derive(Clone)]
pub struct Pioman {
    inner: Rc<Inner>,
}

#[derive(Clone, Copy)]
enum CallSite {
    Inline,
    Hook,
    Tasklet,
}

impl Pioman {
    /// Creates the server, hooks it into `marcel` (idle hook, progress
    /// tasklet, timer trigger).
    pub fn new(marcel: &Marcel, cfg: PiomanConfig) -> Pioman {
        let inner = Rc::new(Inner {
            sim: marcel.sim().clone(),
            marcel: marcel.clone(),
            cfg,
            driver: RefCell::new(None),
            tasklet: Cell::new(None),
            lock_held_until: Cell::new(SimTime::ZERO),
            carried_cost: Cell::new(SimDuration::ZERO),
            watcher_active: Cell::new(false),
            stats: RefCell::new(PiomanStats::default()),
        });
        let pioman = Pioman {
            inner: Rc::clone(&inner),
        };

        // Progress tasklet: drains work whenever scheduled, rescheduling
        // itself while the driver still has something outstanding.
        let weak: Weak<Inner> = Rc::downgrade(&inner);
        let tasklet = marcel.create_tasklet("pioman-progress", move |run| {
            let Some(inner) = weak.upgrade() else { return };
            let pioman = Pioman { inner };
            let p = pioman.locked_progress(CallSite::Tasklet);
            let carried = pioman.inner.carried_cost.replace(SimDuration::ZERO);
            run.charge(p.cost + carried);
            let pending = pioman.driver_pending();
            if pending.submissions || (p.did_work && pending.armed) {
                run.reschedule();
            }
        });
        inner.tasklet.set(Some(tasklet));

        // Idle hook: "Marcel schedules PIOMAN each time a core is idle".
        if inner.cfg.idle_poll {
            let weak = Rc::downgrade(&inner);
            marcel.register_idle_hook(move |_, _core| {
                let Some(inner) = weak.upgrade() else {
                    return HookResult::Nothing;
                };
                let pioman = Pioman { inner };
                let pending = pioman.driver_pending();
                if !pending.any() {
                    return HookResult::Nothing;
                }
                let p = pioman.locked_progress(CallSite::Hook);
                if p.cost.is_zero() && !p.did_work {
                    HookResult::Armed
                } else {
                    HookResult::Worked(p.cost)
                }
            });
        }

        // Timer trigger: progress even when no core ever becomes idle.
        if inner.cfg.timer_poll {
            if let Some(tick) = marcel.config().timer_tick {
                let weak = Rc::downgrade(&inner);
                marcel.start_timer(tick, move |m| {
                    let Some(inner) = weak.upgrade() else { return };
                    let pioman = Pioman { inner };
                    if pioman.driver_pending().any() {
                        if let Some(t) = pioman.inner.tasklet.get() {
                            m.tasklet_schedule(t, None);
                        }
                    }
                });
            }
        }

        pioman
    }

    /// Registers the communication library's callbacks.
    pub fn attach_driver(&self, driver: Rc<dyn ProgressDriver>) {
        *self.inner.driver.borrow_mut() = Some(driver);
    }

    /// The scheduler this server is attached to.
    pub fn marcel(&self) -> &Marcel {
        &self.inner.marcel
    }

    /// Configuration in use.
    pub fn config(&self) -> &PiomanConfig {
        &self.inner.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PiomanStats {
        *self.inner.stats.borrow()
    }

    fn driver(&self) -> Option<Rc<dyn ProgressDriver>> {
        self.inner.driver.borrow().clone()
    }

    fn driver_pending(&self) -> DriverPending {
        self.driver()
            .map(|d| d.pending())
            .unwrap_or_default()
    }

    /// The library posted new work (e.g. an asynchronous send was
    /// registered): get an idle core onto it as soon as possible.
    ///
    /// `origin` is the core that posted the work; the tasklet prefers a
    /// nearby idle core (cache locality) and its invocation from a
    /// different core costs the 2 µs cross-CPU penalty measured in §4.1.
    pub fn notify_work(&self, origin: Option<CoreId>) {
        if let Some(t) = self.inner.tasklet.get() {
            self.inner.marcel.tasklet_schedule(t, origin);
        }
        self.ensure_watcher();
    }

    /// One serialized progress step, honouring the lock model.
    fn locked_progress(&self, site: CallSite) -> Progress {
        let Some(driver) = self.driver() else {
            return Progress::NONE;
        };
        let now = self.inner.sim.now();
        let lock_cost = match self.inner.cfg.lock_model {
            LockModel::PerEventSpinlock => self.inner.cfg.spinlock_cost,
            LockModel::GlobalMutex => {
                if now < self.inner.lock_held_until.get() {
                    // Someone else is inside the library: spin and retry.
                    self.inner.stats.borrow_mut().lock_contentions += 1;
                    return Progress {
                        cost: self.inner.cfg.mutex_spin_cost,
                        did_work: false,
                    };
                }
                self.inner.cfg.spinlock_cost
            }
        };
        let p = driver.progress();
        let cost = if p.cost.is_zero() && !p.did_work {
            // Nothing even worth polling.
            SimDuration::ZERO
        } else {
            p.cost + lock_cost
        };
        if self.inner.cfg.lock_model == LockModel::GlobalMutex && !cost.is_zero() {
            self.inner.lock_held_until.set(now + cost);
        }
        {
            let mut st = self.inner.stats.borrow_mut();
            match site {
                CallSite::Inline => st.inline_progress += 1,
                CallSite::Hook => st.hook_progress += 1,
                CallSite::Tasklet => st.tasklet_progress += 1,
            }
        }
        self.inner.sim.trace().emit_with(now, Category::Pioman, || {
            format!("progress cost={} did_work={}", cost, p.did_work)
        });
        Progress {
            cost,
            did_work: p.did_work,
        }
    }

    /// Keeps a simulated kernel thread blocked on the hardware trigger
    /// while the driver is waiting for events (the method of [10]).
    fn ensure_watcher(&self) {
        if !self.inner.cfg.blocking_call || self.inner.watcher_active.get() {
            return;
        }
        let Some(driver) = self.driver() else { return };
        if driver.hw_trigger().is_none() {
            return;
        }
        self.inner.watcher_active.set(true);
        let weak = Rc::downgrade(&self.inner);
        let sim = self.inner.sim.clone();
        let sim2 = sim.clone();
        sim.spawn_named(Some("pioman-blocking-watcher".into()), async move {
            loop {
                let Some(inner) = weak.upgrade() else { return };
                let pioman = Pioman { inner };
                if !pioman.driver_pending().any() {
                    pioman.inner.watcher_active.set(false);
                    return;
                }
                let Some(trig) = pioman.driver().and_then(|d| d.hw_trigger()) else {
                    pioman.inner.watcher_active.set(false);
                    return;
                };
                let cfg = pioman.inner.cfg.clone();
                drop(pioman);
                trig.wait().await;
                // Interrupt delivery + kernel-thread scheduling latency.
                sim2.sleep(cfg.blocking_wake_latency).await;
                let Some(inner) = weak.upgrade() else { return };
                let pioman = Pioman { inner };
                pioman.inner.stats.borrow_mut().blocking_wakeups += 1;
                // The syscall return and re-entry are charged to the next
                // progress execution.
                pioman
                    .inner
                    .carried_cost
                    .set(pioman.inner.carried_cost.get() + cfg.syscall_cost * 2);
                if let Some(t) = pioman.inner.tasklet.get() {
                    pioman.inner.marcel.tasklet_schedule(t, None);
                }
                // Pace re-arming: re-entering the kernel is not free.
                drop(pioman);
                sim2.sleep(cfg.blocking_wake_latency).await;
            }
        });
    }

    /// Waits for every request in `reqs` (equivalent to waiting each in
    /// turn; progress made for one advances the others too).
    pub async fn wait_all(&self, reqs: &[PiomReq], ctx: &ThreadCtx) {
        for req in reqs {
            self.wait(req, ctx).await;
        }
    }

    /// Waits until *any* request completes; returns its index.
    ///
    /// Returns immediately with the first already-complete request if one
    /// exists.
    pub async fn wait_any(&self, reqs: &[PiomReq], ctx: &ThreadCtx) -> usize {
        assert!(!reqs.is_empty(), "wait_any on empty request set");
        loop {
            if let Some(i) = reqs.iter().position(PiomReq::is_complete) {
                return i;
            }
            let p = self.locked_progress(CallSite::Inline);
            if !p.cost.is_zero() {
                ctx.compute(p.cost).await;
            }
            if p.did_work {
                continue;
            }
            if !self.inner.cfg.can_progress_in_background() {
                ctx.compute(self.inner.cfg.inline_poll_pause).await;
                continue;
            }
            self.ensure_watcher();
            // Block on a trigger fired by whichever request finishes
            // first.
            let any = Trigger::new();
            for req in reqs {
                let t = any.clone();
                let trig = req.trigger().clone();
                self.inner.sim.spawn(async move {
                    trig.wait().await;
                    t.fire();
                });
            }
            ctx.block_until(&any, true).await;
        }
    }

    /// Waits for `req` to complete, from Marcel thread `ctx`.
    ///
    /// The waiting thread first makes progress *inline* ("if the
    /// application reaches the wait function before the message has been
    /// submitted … the message is sent inside the wait function", §3.2);
    /// once nothing more can be done inline it blocks on the request's
    /// trigger, releasing its core so that PIOMAN can use it for polling.
    pub async fn wait(&self, req: &PiomReq, ctx: &ThreadCtx) {
        self.inner.stats.borrow_mut().waits += 1;
        loop {
            if req.is_complete() {
                return;
            }
            let p = self.locked_progress(CallSite::Inline);
            if !p.cost.is_zero() {
                ctx.compute(p.cost).await;
            }
            if req.is_complete() {
                return;
            }
            if p.did_work {
                continue;
            }
            if self.inner.cfg.can_progress_in_background() {
                self.ensure_watcher();
                ctx.block_until(req.trigger(), true).await;
            } else {
                // No one else will ever poll: busy-wait like a classical
                // MPI implementation.
                ctx.compute(self.inner.cfg.inline_poll_pause).await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm2_marcel::{MarcelConfig, Priority};
    use pm2_topo::{NodeId, Topology};
    use std::collections::VecDeque;

    /// A scriptable driver: a queue of work items (cost, completes-req),
    /// plus an "armed poll" that completes a request when a deadline
    /// passes.
    struct FakeDriver {
        sim: Sim,
        poll_cost: SimDuration,
        work: RefCell<VecDeque<(SimDuration, Option<PiomReq>)>>,
        armed: RefCell<Vec<(SimTime, PiomReq)>>,
        hw: RefCell<Option<Trigger>>,
    }

    impl FakeDriver {
        fn new(sim: &Sim) -> Rc<Self> {
            Rc::new(FakeDriver {
                sim: sim.clone(),
                poll_cost: SimDuration::from_nanos(200),
                work: RefCell::new(VecDeque::new()),
                armed: RefCell::new(Vec::new()),
                hw: RefCell::new(None),
            })
        }

        fn push_work(&self, cost: SimDuration, req: Option<PiomReq>) {
            self.work.borrow_mut().push_back((cost, req));
        }

        /// Arm a request that becomes detectable at `at`.
        fn arm(&self, at: SimTime, req: PiomReq) {
            self.armed.borrow_mut().push((at, req));
        }
    }

    impl ProgressDriver for FakeDriver {
        fn progress(&self) -> Progress {
            if let Some((cost, req)) = self.work.borrow_mut().pop_front() {
                if let Some(r) = req {
                    r.complete(&self.sim);
                }
                return Progress {
                    cost,
                    did_work: true,
                };
            }
            let now = self.sim.now();
            let mut armed = self.armed.borrow_mut();
            if let Some(pos) = armed.iter().position(|(at, _)| *at <= now) {
                let (_, req) = armed.remove(pos);
                req.complete(&self.sim);
                return Progress {
                    cost: self.poll_cost,
                    did_work: true,
                };
            }
            if armed.is_empty() {
                Progress::NONE
            } else {
                Progress {
                    cost: self.poll_cost,
                    did_work: false,
                }
            }
        }

        fn pending(&self) -> DriverPending {
            DriverPending {
                submissions: !self.work.borrow().is_empty(),
                armed: !self.armed.borrow().is_empty(),
            }
        }

        fn hw_trigger(&self) -> Option<Trigger> {
            self.hw.borrow().clone()
        }
    }

    fn setup(cores: usize, cfg: PiomanConfig) -> (Sim, Marcel, Pioman, Rc<FakeDriver>) {
        let sim = Sim::new(5);
        let topo = Rc::new(Topology::single_node(cores));
        let marcel = Marcel::new(sim.clone(), topo, NodeId(0), MarcelConfig::zero_cost());
        let pioman = Pioman::new(&marcel, cfg);
        let driver = FakeDriver::new(&sim);
        pioman.attach_driver(driver.clone() as Rc<dyn ProgressDriver>);
        (sim, marcel, pioman, driver)
    }

    #[test]
    fn work_is_offloaded_to_idle_core_during_compute() {
        let (sim, marcel, pioman, driver) = setup(2, PiomanConfig::default());
        let req = PiomReq::new(&sim, "send");
        driver.push_work(SimDuration::from_micros(5), Some(req.clone()));
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        let req2 = req.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(20)).await;
            pioman2.wait(&req2, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // The 5µs submission ran on the idle second core during the 20µs
        // compute: total ≈ max(comm, comp) = 20µs (+ small overheads).
        assert!(done.get() >= 20 && done.get() < 22, "t={}", done.get());
        assert!(req.completed_at().unwrap().as_micros() < 10);
        assert!(pioman.stats().tasklet_progress >= 1);
    }

    #[test]
    fn work_runs_inline_in_wait_when_no_idle_core() {
        let (sim, marcel, pioman, driver) = setup(1, PiomanConfig::default());
        let req = PiomReq::new(&sim, "send");
        driver.push_work(SimDuration::from_micros(5), Some(req.clone()));
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(20)).await;
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // Single core: submission delayed into the wait: ≈ 20 + 5.
        assert!(done.get() >= 25 && done.get() < 27, "t={}", done.get());
        assert!(pioman.stats().inline_progress >= 1);
    }

    #[test]
    fn armed_poll_detected_by_idle_hook_while_thread_blocked() {
        let (sim, marcel, pioman, driver) = setup(1, PiomanConfig::default());
        let req = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(40), req.clone());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // Thread blocks; its own core polls via the idle hook; detection at
        // ~40µs plus one poll period.
        assert!(done.get() >= 40 && done.get() <= 42, "t={}", done.get());
        assert!(pioman.stats().hook_progress >= 2);
    }

    #[test]
    fn blocking_call_wakes_tasklet_when_idle_polling_disabled() {
        let cfg = PiomanConfig {
            idle_poll: false,
            timer_poll: false,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(2, cfg);
        let req = PiomReq::new(&sim, "recv");
        let hw = Trigger::new();
        *driver.hw.borrow_mut() = Some(hw.clone());
        driver.arm(SimTime::from_micros(30), req.clone());
        let hw2 = hw.clone();
        sim.schedule_in(SimDuration::from_micros(30), move |_| hw2.fire());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        // 30µs event + 2µs interrupt latency + tasklet + syscall costs.
        assert!(done.get() >= 32 && done.get() <= 36, "t={}", done.get());
        assert_eq!(pioman.stats().blocking_wakeups, 1);
        assert!(pioman.stats().hook_progress == 0);
    }

    #[test]
    fn wait_busy_polls_when_all_background_disabled() {
        let cfg = PiomanConfig {
            idle_poll: false,
            timer_poll: false,
            blocking_call: false,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(1, cfg);
        let req = PiomReq::new(&sim, "recv");
        driver.arm(SimTime::from_micros(10), req.clone());
        let done = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done);
        let pioman2 = pioman.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait(&req, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert!(done.get() >= 10 && done.get() <= 12, "t={}", done.get());
        assert!(pioman.stats().inline_progress > 5, "busy polling expected");
    }

    #[test]
    fn wait_any_returns_first_completion() {
        let (sim, marcel, pioman, driver) = setup(2, PiomanConfig::default());
        let slow = PiomReq::new(&sim, "slow");
        let fast = PiomReq::new(&sim, "fast");
        driver.arm(SimTime::from_micros(50), slow.clone());
        driver.arm(SimTime::from_micros(10), fast.clone());
        let winner = Rc::new(Cell::new(usize::MAX));
        let winner2 = Rc::clone(&winner);
        let pioman2 = pioman.clone();
        let reqs = vec![slow.clone(), fast.clone()];
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            winner2.set(pioman2.wait_any(&reqs, &ctx).await);
        });
        sim.run();
        assert_eq!(winner.get(), 1, "the fast request should win");
        assert!(fast.is_complete());
    }

    #[test]
    fn wait_all_completes_everything() {
        let (sim, marcel, pioman, driver) = setup(2, PiomanConfig::default());
        let reqs: Vec<PiomReq> = (0..4).map(|_| PiomReq::new(&sim, "r")).collect();
        for (i, r) in reqs.iter().enumerate() {
            driver.arm(SimTime::from_micros(10 * (i as u64 + 1)), r.clone());
        }
        let done_at = Rc::new(Cell::new(0u64));
        let done2 = Rc::clone(&done_at);
        let pioman2 = pioman.clone();
        let reqs2 = reqs.clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.wait_all(&reqs2, &ctx).await;
            done2.set(ctx.marcel().sim().now().as_micros());
        });
        sim.run();
        assert!(reqs.iter().all(PiomReq::is_complete));
        assert!(done_at.get() >= 40 && done_at.get() <= 43, "t={}", done_at.get());
    }

    #[test]
    fn global_mutex_serializes_and_counts_contention() {
        let cfg = PiomanConfig {
            lock_model: LockModel::GlobalMutex,
            ..PiomanConfig::default()
        };
        let (sim, marcel, pioman, driver) = setup(4, cfg);
        // Lots of costly work items: multiple idle cores will try to
        // process them concurrently and contend on the global lock.
        let reqs: Vec<PiomReq> = (0..8).map(|_| PiomReq::new(&sim, "w")).collect();
        for r in &reqs {
            driver.push_work(SimDuration::from_micros(3), Some(r.clone()));
        }
        let pioman2 = pioman.clone();
        let last = reqs.last().unwrap().clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(1)).await;
            pioman2.wait(&last, &ctx).await;
        });
        sim.run();
        assert!(
            pioman.stats().lock_contentions > 0,
            "idle cores should have contended: {:?}",
            pioman.stats()
        );
        // All work completed despite contention: ≥ 8×3µs serialized.
        assert!(sim.now().as_micros() >= 24);
    }

    #[test]
    fn spinlock_model_processes_concurrently() {
        let (sim, marcel, pioman, driver) = setup(4, PiomanConfig::default());
        let reqs: Vec<PiomReq> = (0..8).map(|_| PiomReq::new(&sim, "w")).collect();
        for r in &reqs {
            driver.push_work(SimDuration::from_micros(3), Some(r.clone()));
        }
        let pioman2 = pioman.clone();
        let last = reqs.last().unwrap().clone();
        marcel.spawn("app", Priority::Normal, None, move |ctx| async move {
            pioman2.notify_work(ctx.current_core());
            ctx.compute(SimDuration::from_micros(1)).await;
            pioman2.wait(&last, &ctx).await;
        });
        sim.run();
        assert_eq!(pioman.stats().lock_contentions, 0);
        // 8 items × 3µs over ≥3 workers: well under full serialization.
        assert!(
            sim.now().as_micros() <= 20,
            "expected concurrency, took {}µs",
            sim.now().as_micros()
        );
    }
}
