//! PIOMAN: the event-driven multithreaded I/O manager (the paper's
//! contribution).
//!
//! PIOMAN sits between the communication library (NewMadeleine, in
//! `pm2-newmad`) and the thread scheduler (Marcel, in `pm2-marcel`). The
//! library registers a [`ProgressDriver`] — callbacks that poll the NICs
//! and feed pending requests to the network — and PIOMAN decides *when*
//! and *where* those callbacks run:
//!
//! * **on idle cores**, through a Marcel idle hook — "MARCEL schedules
//!   PIOMAN each time a core is idle" (§3.2); this is what overlaps
//!   submission and rendezvous progression with application computation;
//! * **in a progress tasklet**, scheduled whenever new work is posted
//!   ([`Pioman::notify_work`]) — tasklets give mutual exclusion without a
//!   library-wide lock (§2.1) and run "as soon as the scheduler reaches a
//!   safe point";
//! * **at timer ticks**, so progress still happens when every core is busy
//!   computing (optionally stealing cycles from computing threads);
//! * **from a blocking system call on a dedicated kernel thread** when no
//!   core is idle — the method of the authors' earlier work [10], kept as
//!   a fallback because of its "significant overhead";
//! * **inline in [`Pioman::wait`]** — if the application reaches the wait
//!   before background progress happened, the waiting thread performs the
//!   work itself ("the message is sent inside the wait function", §3.2).
//!
//! The §2.1 thread-safety argument is modelled by [`LockModel`]: per-event
//! spinlocks allow concurrent progress on different cores (each paying a
//! tiny lock cost), while a library-wide mutex serializes all progress
//! system-wide — the `abl_lock` benchmark quantifies the difference.
//!
//! # The driver registry
//!
//! The server holds a *registry* of drivers rather than a single slot:
//! each transport (every NIC rail, the shared-memory channel) attaches
//! its own [`ProgressDriver`] and gets back a [`DriverId`]. Each
//! progress step makes one scheduling decision over the whole registry:
//!
//! 1. **Submissions first** — the driver holding the globally-oldest
//!    deferred submission (see [`DriverPending::oldest_submission`])
//!    submits one request; ties between unranked drivers rotate fairly.
//!    A burst valve ([`PiomanConfig::submission_burst_limit`]) forces a
//!    completion sweep through sustained submission floods.
//! 2. **Completion polling** — otherwise a round-robin rotor sweeps the
//!    armed drivers; the first one that reports work ends the sweep, and
//!    scanning a driver with nothing pending is free.
//!
//! Progress-site counters are kept per driver ([`Pioman::driver_stats`])
//! as well as globally, so workloads can see *which* shard (which rail,
//! or shared memory) the idle cores actually progressed.
//!
//! # Driver health and quarantine
//!
//! On fault-prone fabrics a stalled NIC can pin every idle core on
//! unproductive polls. The opt-in health valve
//! ([`PiomanConfig::quarantine_after`]) counts consecutive unproductive
//! completion polls per driver and, past the threshold, *quarantines*
//! the driver: its polling is paused for an exponentially growing
//! back-off window (submissions are still served), a probe re-polls it
//! at expiry, and any productive step re-arms it to full health.
//! [`Pioman::driver_health`] and [`Pioman::degraded_drivers`] report the
//! degraded state gracefully instead of wedging.

#![warn(missing_docs)]

mod config;
mod req;
mod server;

pub use config::{LockModel, PiomanConfig};
pub use req::{PiomReq, ReqError};
pub use server::{
    DriverHealthReport, DriverId, DriverPending, InjectionEndpoint, Pioman, PiomanStats, Progress,
    ProgressDriver,
};
