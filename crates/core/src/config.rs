//! PIOMAN configuration.

use pm2_sim::SimDuration;

/// How event processing is protected against concurrent access (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockModel {
    /// The paper's design: each event is protected separately by a light
    /// spinlock, so different cores can process different events at the
    /// same time; each progress call pays a small lock cost.
    PerEventSpinlock,
    /// The classical alternative: one library-wide mutex. Only one core
    /// can be inside the library at any time; contenders spin.
    GlobalMutex,
}

/// Tunable behaviour and costs of the PIOMAN server.
#[derive(Debug, Clone)]
pub struct PiomanConfig {
    /// Lock discipline for event processing.
    pub lock_model: LockModel,
    /// Cost of taking one per-event spinlock (uncontended).
    pub spinlock_cost: SimDuration,
    /// CPU wasted by a core that finds the global mutex held (it retries
    /// on the next poll opportunity).
    pub mutex_spin_cost: SimDuration,
    /// Run progress from the Marcel idle hook (idle-core polling).
    pub idle_poll: bool,
    /// Schedule the progress tasklet on Marcel timer ticks.
    pub timer_poll: bool,
    /// Keep a dedicated kernel thread in a blocking call when the driver
    /// is waiting on hardware ("the blocking method of [10]").
    pub blocking_call: bool,
    /// One-way syscall cost (enter or leave the kernel).
    pub syscall_cost: SimDuration,
    /// Driver-health valve: quarantine a driver after this many
    /// *consecutive* unproductive completion polls, pausing its polling
    /// for a back-off window. `None` (the default) disables health
    /// tracking entirely — long rendezvous waits legitimately show tens
    /// of thousands of unproductive polls, so quarantine is an opt-in for
    /// fault-prone fabrics (a stalled NIC should not burn every idle
    /// core). Submissions are still served while quarantined: only
    /// completion polling backs off.
    pub quarantine_after: Option<u32>,
    /// Base quarantine window; doubles with each consecutive quarantine
    /// of the same driver (bounded by [`Self::quarantine_max_shift`]).
    pub quarantine_backoff: SimDuration,
    /// Cap on the quarantine doubling (window ≤ backoff × 2^shift).
    pub quarantine_max_shift: u32,
    /// Latency between the hardware event and the kernel thread being
    /// runnable (interrupt delivery + scheduling).
    pub blocking_wake_latency: SimDuration,
    /// Pause between inline polls when a wait cannot block (e.g. all
    /// background progression disabled): the busy-poll granularity.
    pub inline_poll_pause: SimDuration,
    /// Anti-starvation valve for the multi-driver registry: after this
    /// many consecutive deferred-submission steps, one progress call is
    /// forced to poll for completions even if more submissions are
    /// queued. [`crate::PiomanStats::max_submission_burst`] records the
    /// longest burst actually observed so workloads can verify the
    /// valve never had to fire.
    pub submission_burst_limit: u32,
    /// Dedicate a Marcel thread to progression (the zero-idle-core
    /// fallback): the thread busy-polls the registry whenever any driver
    /// has work, parking when everything is quiet. With every core
    /// saturated by compute, stolen progression has nowhere to run —
    /// this thread *is* the progress engine then, at the price of one
    /// core. Off by default (stolen progression costs nothing when idle
    /// cores exist).
    pub progress_thread: bool,
}

impl Default for PiomanConfig {
    fn default() -> Self {
        PiomanConfig {
            lock_model: LockModel::PerEventSpinlock,
            spinlock_cost: SimDuration::from_nanos(30),
            mutex_spin_cost: SimDuration::from_nanos(300),
            idle_poll: true,
            timer_poll: true,
            blocking_call: true,
            syscall_cost: SimDuration::from_nanos(1_500),
            quarantine_after: None,
            quarantine_backoff: SimDuration::from_micros(50),
            quarantine_max_shift: 6,
            blocking_wake_latency: SimDuration::from_micros(2),
            inline_poll_pause: SimDuration::from_nanos(300),
            submission_burst_limit: 64,
            progress_thread: false,
        }
    }
}

impl PiomanConfig {
    /// True if at least one background progression mechanism is enabled;
    /// when none is, [`crate::Pioman::wait`] must busy-poll instead of
    /// blocking (nobody else would ever detect the completion).
    pub fn can_progress_in_background(&self) -> bool {
        self.idle_poll || self.timer_poll || self.blocking_call
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_spinlocks_and_background_progress() {
        let c = PiomanConfig::default();
        assert_eq!(c.lock_model, LockModel::PerEventSpinlock);
        assert!(c.can_progress_in_background());
    }

    #[test]
    fn fully_disabled_background_detected() {
        let c = PiomanConfig {
            idle_poll: false,
            timer_poll: false,
            blocking_call: false,
            ..PiomanConfig::default()
        };
        assert!(!c.can_progress_in_background());
    }
}
