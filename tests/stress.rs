//! Stress scenarios: larger clusters, heavy mixed traffic, jitter
//! injection, long-running stability. These complement the shape tests in
//! `integration.rs`.

use pm2_fabric::{FabricParams, FaultPlan};
use pm2_mpi::{Cluster, ClusterConfig, Comm, StrategyKind};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::rng::Xoshiro256;
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Wedge guard: the heaviest scenario here (the 16 MB rendezvous) ends
/// around 15 ms of virtual time, so a run still busy at one virtual
/// minute has stopped converging and should fail instead of hanging CI.
const STRESS_DEADLINE: SimTime = SimTime::from_secs(60);

/// Seed of the fault-matrix soak below; `ci.sh` sweeps the same published
/// values (1/7/42) it uses for `tests/faults.rs`, so stress and fault
/// injection are exercised together, not only in isolation.
fn fault_seed() -> u64 {
    std::env::var("PM2_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// 6 nodes × 4 threads each, random rings of mixed-size messages under
/// jitter: everything arrives intact, under both engines.
#[test]
fn six_node_random_traffic_with_jitter() {
    for engine in [EngineKind::Pioman, EngineKind::Sequential] {
        let mut fabric = FabricParams::myri10g();
        fabric.jitter_frac = 0.25;
        let cluster = Cluster::build(ClusterConfig {
            nodes: 6,
            fabric,
            seed: 99,
            ..ClusterConfig::paper_testbed(engine)
        });
        let delivered = Rc::new(Cell::new(0u32));
        let mut rng = Xoshiro256::new(1234);
        let mut expected = 0u32;
        for node in 0..6usize {
            for t in 0..4usize {
                let me = node * 4 + t;
                let peer_thread = rng.gen_below(24) as usize;
                let peer_node = peer_thread / 4;
                let len = 64 + rng.gen_below(48 << 10) as usize;
                let compute = rng.gen_below(40);
                expected += 1;
                // Pair (me -> peer) with a unique tag; the peer's node
                // runs a dedicated receiver thread.
                let tag = Tag(me as u64);
                {
                    let s = cluster.session(node).clone();
                    cluster.spawn_on(node, format!("tx{me}"), move |ctx| async move {
                        ctx.compute(SimDuration::from_micros(compute)).await;
                        let h = s
                            .isend(&ctx, NodeId(peer_node), tag, vec![me as u8; len])
                            .await;
                        ctx.compute(SimDuration::from_micros(compute)).await;
                        s.swait_send(&h, &ctx).await;
                    });
                }
                {
                    let s = cluster.session(peer_node).clone();
                    let delivered = Rc::clone(&delivered);
                    cluster.spawn_on(peer_node, format!("rx{me}"), move |ctx| async move {
                        let data = s.recv(&ctx, Some(NodeId(node)), tag).await;
                        assert_eq!(data.len(), len);
                        assert!(data.iter().all(|&b| b == me as u8));
                        delivered.set(delivered.get() + 1);
                    });
                }
            }
        }
        cluster.run_deadline(STRESS_DEADLINE);
        assert_eq!(delivered.get(), expected, "engine {engine:?}");
    }
}

/// Many iterations of the full stencil keep the engines stable and
/// PIOMAN ahead; counters stay consistent (sends == recvs).
#[test]
fn long_running_stencil_stability() {
    use pm2_mpi::workloads::{run_stencil, StencilParams};
    let p = StencilParams {
        iters: 10,
        ..StencilParams::four_threads()
    };
    let seq = run_stencil(ClusterConfig::paper_testbed(EngineKind::Sequential), &p);
    let pio = run_stencil(ClusterConfig::paper_testbed(EngineKind::Pioman), &p);
    assert!(pio.total_us < seq.total_us);
    for r in [&seq, &pio] {
        let sends: u64 = r.counters.iter().map(|c| c.sends).sum();
        let recvs: u64 = r.counters.iter().map(|c| c.recvs).sum();
        assert_eq!(sends, recvs, "every halo send has a matching receive");
        assert_eq!(sends, 4 * 2 * 10, "4 threads x 2 neighbours x 10 iters");
    }
}

/// The six-node soak again, but on a lossy fabric: 2% of all frames
/// dropped under whatever `PM2_FAULT_SEED` the matrix supplies. Every
/// message still arrives exactly once and the PR-2 conservation
/// invariants hold across the whole mesh:
///
/// * per node, `eager_msgs_tx + rdv_started == sends` — retransmissions
///   re-enter the wire as raw packs, never as application messages;
/// * fabric-wide, `Σ rx + Σ dropped + Σ corrupted == Σ tx + Σ duplicated`
///   — every transmitted frame meets exactly one fate.
///
/// PIOMAN engine only: the sequential engine cannot retransmit once the
/// application has left the library (see `tests/faults.rs`), and a soak
/// with per-thread send/recv loops has no natural re-entry point.
#[test]
fn random_traffic_soak_under_fault_matrix() {
    const NODES: usize = 4;
    const STREAMS_PER_NODE: usize = 4;
    const MSGS_PER_STREAM: usize = 6;
    let mut fabric = FabricParams::myri10g();
    fabric.fault = FaultPlan::loss(fault_seed(), 0.02);
    let cluster = Cluster::build(ClusterConfig {
        nodes: NODES,
        fabric,
        seed: 7,
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    });
    let delivered = Rc::new(Cell::new(0u32));
    let mut rng = Xoshiro256::new(fault_seed() ^ 0x50AC);
    let mut expected = 0u32;
    for node in 0..NODES {
        for t in 0..STREAMS_PER_NODE {
            let id = node * STREAMS_PER_NODE + t;
            let peer = {
                let p = rng.gen_below((NODES - 1) as u64) as usize;
                if p >= node {
                    p + 1
                } else {
                    p
                }
            };
            // Mixed sizes: mostly eager, every fourth stream rendezvous,
            // so both retransmit paths (ack timeout, RTS/CTS re-issue)
            // see traffic.
            let len = if id % 4 == 0 {
                (40 << 10) + rng.gen_below(24 << 10) as usize
            } else {
                64 + rng.gen_below(8 << 10) as usize
            };
            expected += MSGS_PER_STREAM as u32;
            // One tag per message (the faults.rs idiom): a retransmitted
            // eager frame may be overtaken by its successors, so same-tag
            // ordering is not part of the exactly-once contract.
            let base = (id * MSGS_PER_STREAM) as u64;
            {
                let s = cluster.session(node).clone();
                cluster.spawn_on(node, format!("tx{id}"), move |ctx| async move {
                    for m in 0..MSGS_PER_STREAM {
                        s.send(
                            &ctx,
                            NodeId(peer),
                            Tag(base + m as u64),
                            vec![(id + m) as u8; len],
                        )
                        .await;
                    }
                });
            }
            {
                let s = cluster.session(peer).clone();
                let delivered = Rc::clone(&delivered);
                cluster.spawn_on(peer, format!("rx{id}"), move |ctx| async move {
                    for m in 0..MSGS_PER_STREAM {
                        let data = s.recv(&ctx, Some(NodeId(node)), Tag(base + m as u64)).await;
                        assert_eq!(data.len(), len, "stream {id} msg {m}");
                        assert!(data.iter().all(|&b| b == (id + m) as u8));
                        delivered.set(delivered.get() + 1);
                    }
                });
            }
        }
    }
    cluster.run_deadline(STRESS_DEADLINE);
    let seed = fault_seed();
    assert_eq!(
        delivered.get(),
        expected,
        "seed {seed}: soak lost or duplicated messages"
    );
    let (mut tx, mut rx_or_lost, mut dup, mut injected) = (0u64, 0u64, 0u64, 0u64);
    for node in 0..NODES {
        let c = cluster.session(node).counters();
        assert_eq!(
            c.eager_msgs_tx + c.rdv_started,
            c.sends,
            "seed {seed} node {node}: retransmissions leaked into \
             message counters: {c:?}"
        );
        let n = cluster.nic_counters(node, 0);
        tx += n.tx_frames;
        rx_or_lost += n.rx_frames + n.faults_dropped + n.faults_corrupted;
        dup += n.faults_duplicated;
        injected += n.faults_dropped + n.faults_duplicated + n.faults_corrupted;
    }
    assert!(injected >= 1, "seed {seed}: fault plan never fired");
    assert_eq!(
        rx_or_lost,
        tx + dup,
        "seed {seed}: frame fates do not balance across the mesh"
    );
}

/// Wildcard receivers under bursty multi-sender load: each message is
/// consumed exactly once.
#[test]
fn wildcard_receivers_consume_each_message_once() {
    let cluster = Cluster::build(ClusterConfig {
        nodes: 4,
        ..ClusterConfig::default()
    });
    const PER_SENDER: usize = 15;
    let tally = Rc::new(RefCell::new(vec![0u32; 3 * PER_SENDER]));
    for sender in 1..4usize {
        let s = cluster.session(sender).clone();
        cluster.spawn_on(sender, format!("tx{sender}"), move |ctx| async move {
            for m in 0..PER_SENDER {
                let uid = (sender - 1) * PER_SENDER + m;
                let h = s.isend(&ctx, NodeId(0), Tag(7), vec![uid as u8; 512]).await;
                s.swait_send(&h, &ctx).await;
            }
        });
    }
    // Three wildcard receiver threads share the sink node.
    for r in 0..3 {
        let s = cluster.session(0).clone();
        let tally = Rc::clone(&tally);
        cluster.spawn_on(0, format!("rx{r}"), move |ctx| async move {
            for _ in 0..PER_SENDER {
                let data = s.recv(&ctx, None, Tag(7)).await;
                tally.borrow_mut()[data[0] as usize] += 1;
            }
        });
    }
    cluster.run_deadline(STRESS_DEADLINE);
    assert!(
        tally.borrow().iter().all(|&c| c == 1),
        "some message lost or duplicated: {:?}",
        tally.borrow()
    );
}

/// Collectives at scale: 8 ranks, repeated allreduce/bcast/alltoall
/// rounds agree everywhere.
#[test]
fn collectives_at_scale() {
    let cluster = Cluster::build(ClusterConfig {
        nodes: 8,
        ..ClusterConfig::default()
    });
    let comms = Comm::world(&cluster);
    let checks = Rc::new(Cell::new(0u32));
    for (rank, comm) in comms.into_iter().enumerate() {
        let checks = Rc::clone(&checks);
        cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
            for round in 1..=3u64 {
                let sum = comm.allreduce_sum(&ctx, comm.rank() as u64 * round).await;
                assert_eq!(sum, (0..8).map(|r| r * round).sum::<u64>());
                let root = (round as usize) % comm.size();
                let data = if comm.rank() == root {
                    vec![round as u8; 4096]
                } else {
                    Vec::new()
                };
                let b = comm.bcast(&ctx, root, data).await;
                assert_eq!(b, vec![round as u8; 4096]);
                let out: Vec<Vec<u8>> = (0..comm.size())
                    .map(|to| vec![(comm.rank() * 8 + to) as u8; 128])
                    .collect();
                let inb = comm.alltoall(&ctx, out).await;
                for (from, buf) in inb.iter().enumerate() {
                    assert_eq!(buf[0] as usize, from * 8 + comm.rank());
                }
                comm.barrier(&ctx).await;
                checks.set(checks.get() + 1);
            }
        });
    }
    cluster.run_deadline(STRESS_DEADLINE);
    assert_eq!(checks.get(), 24);
}

/// Aggregation under sustained load never reorders within a tag and
/// always conserves messages.
#[test]
fn aggregation_under_sustained_load() {
    let cluster = Cluster::build(ClusterConfig {
        strategy: StrategyKind::Aggreg,
        ..ClusterConfig::default()
    });
    const STREAMS: usize = 4;
    const PER: usize = 25;
    let oks = Rc::new(Cell::new(0u32));
    for stream in 0..STREAMS {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, format!("tx{stream}"), move |ctx| async move {
            for m in 0..PER {
                let h = s
                    .isend(&ctx, NodeId(1), Tag(stream as u64), vec![m as u8; 200])
                    .await;
                ctx.compute(SimDuration::from_micros(2)).await;
                s.swait_send(&h, &ctx).await;
            }
        });
        let s = cluster.session(1).clone();
        let oks = Rc::clone(&oks);
        cluster.spawn_on(1, format!("rx{stream}"), move |ctx| async move {
            for m in 0..PER {
                let data = s.recv(&ctx, Some(NodeId(0)), Tag(stream as u64)).await;
                assert_eq!(data[0] as usize, m, "stream {stream} reordered");
                oks.set(oks.get() + 1);
            }
        });
    }
    cluster.run_deadline(STRESS_DEADLINE);
    assert_eq!(oks.get(), (STREAMS * PER) as u32);
    assert_eq!(cluster.session(1).counters().ooo_deliveries, 0);
}

/// Huge single transfer (16 MB) crosses the fabric correctly and at the
/// wire rate.
#[test]
fn sixteen_megabyte_rendezvous() {
    let cluster = Cluster::build(ClusterConfig::default());
    let len = 16 << 20;
    let done = Rc::new(Cell::new(0u64));
    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "tx", move |ctx| async move {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let h = s.isend(&ctx, NodeId(1), Tag(1), data).await;
            s.swait_send(&h, &ctx).await;
        });
    }
    {
        let s = cluster.session(1).clone();
        let done = Rc::clone(&done);
        cluster.spawn_on(1, "rx", move |ctx| async move {
            let data = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
            assert_eq!(data.len(), len);
            assert!(data.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
            done.set(ctx.marcel().sim().now().as_micros());
        });
    }
    cluster.run_deadline(STRESS_DEADLINE);
    // 16 MB at 1.25 GB/s ≈ 13.4 ms; allow protocol slack.
    let t = done.get();
    assert!(t > 13_000 && t < 15_000, "16MB transfer took {t}µs");
}
