//! Collective-engine validation: differential testing of every algorithm
//! against the flat reference, fault-tolerance under a lossy fabric, and
//! the performance properties the algorithms exist for.
//!
//! Everything is seeded and deterministic; the lossy scenarios honour
//! `PM2_FAULT_SEED` so `ci.sh` can run the published seed matrix.

use pm2_bench::collbench::{run_coll, CollOp};
use pm2_coll::{AlgoKind, ReduceOp};
use pm2_fabric::{FabricParams, FaultPlan};
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_sim::rng::Xoshiro256;
use pm2_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Wedge guard for the lossy runs (virtual time).
const COLL_DEADLINE: SimTime = SimTime::from_secs(60);

fn fault_seed() -> u64 {
    std::env::var("PM2_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = Xoshiro256::new(seed);
    (0..len).map(|_| rng.gen_below(256) as u8).collect()
}

/// Byte-wise wrapping sum of all ranks' payloads — the reference result
/// for `ReduceOp::WrapAdd8`, computed without the engine.
fn wrap_sum(inputs: &[Vec<u8>]) -> Vec<u8> {
    let mut acc = inputs[0].clone();
    for b in &inputs[1..] {
        for (a, x) in acc.iter_mut().zip(b) {
            *a = a.wrapping_add(*x);
        }
    }
    acc
}

/// Runs one collective on every rank of a fresh cluster and returns each
/// rank's result buffer.
fn run_world<F, Fut>(cfg: ClusterConfig, deadline: Option<SimTime>, body: F) -> Vec<Vec<u8>>
where
    F: Fn(Comm, pm2_marcel::ThreadCtx) -> Fut + Clone + 'static,
    Fut: std::future::Future<Output = Vec<u8>> + 'static,
{
    let cluster = Cluster::build(cfg);
    let comms = Comm::world(&cluster);
    let ranks = cluster.ranks();
    let out = Rc::new(RefCell::new(vec![Vec::new(); ranks]));
    for (rank, comm) in comms.into_iter().enumerate() {
        let out = Rc::clone(&out);
        let body = body.clone();
        cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
            let res = body(comm, ctx).await;
            out.borrow_mut()[rank] = res;
        });
    }
    match deadline {
        Some(d) => cluster.run_deadline(d),
        None => cluster.run(),
    };
    Rc::try_unwrap(out).expect("all ranks done").into_inner()
}

fn cfg(nodes: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        ..ClusterConfig::default()
    }
}

const ALL_ALGOS: [AlgoKind; 4] = [
    AlgoKind::Flat,
    AlgoKind::Tree,
    AlgoKind::Ring,
    AlgoKind::RecDouble,
];

/// Differential property test: every algorithm must produce the flat
/// reference result for random rank counts, payload sizes (0 B – 1 MiB,
/// log-uniform so both eager and rendezvous paths are hit) and roots.
#[test]
fn differential_algorithms_match_flat_reference() {
    let mut rng = Xoshiro256::new(0xC011EC7);
    for trial in 0..8 {
        let ranks = rng.gen_range(2, 17) as usize;
        let len = match rng.gen_below(4) {
            0 => rng.gen_below(64) as usize,
            1 => rng.gen_range(64, 4096) as usize,
            2 => rng.gen_range(4096, 128 << 10) as usize,
            _ => rng.gen_range(128 << 10, (1 << 20) + 1) as usize,
        };
        let root = rng.gen_below(ranks as u64) as usize;
        let inputs: Vec<Vec<u8>> = (0..ranks)
            .map(|r| payload(trial * 1000 + r as u64, len))
            .collect();
        let expected_sum = wrap_sum(&inputs);

        for algo in ALL_ALGOS {
            // Allreduce: every rank must end with the byte-wise sum.
            let ins = inputs.clone();
            let got = run_world(cfg(ranks), None, move |comm, ctx| {
                let data = ins[comm.rank()].clone();
                async move {
                    comm.allreduce_with(&ctx, data, ReduceOp::WrapAdd8, Some(algo))
                        .await
                }
            });
            for (r, buf) in got.iter().enumerate() {
                assert_eq!(
                    buf, &expected_sum,
                    "allreduce {algo:?} trial {trial} ranks {ranks} len {len} rank {r}"
                );
            }

            // Bcast: the root's payload must reach every rank.
            let rootbuf = inputs[root].clone();
            let got = run_world(cfg(ranks), None, move |comm, ctx| {
                let data = if comm.rank() == root {
                    rootbuf.clone()
                } else {
                    Vec::new()
                };
                async move { comm.bcast_with(&ctx, root, data, Some(algo)).await }
            });
            for (r, buf) in got.iter().enumerate() {
                assert_eq!(
                    buf, &inputs[root],
                    "bcast {algo:?} trial {trial} ranks {ranks} len {len} root {root} rank {r}"
                );
            }
        }

        // Gather: tree vs flat (framed to one buffer for comparison).
        for algo in [AlgoKind::Flat, AlgoKind::Tree] {
            let ins = inputs.clone();
            let got = run_world(cfg(ranks), None, move |comm, ctx| {
                let data = ins[comm.rank()].clone();
                async move {
                    match comm.gather_with(&ctx, root, data, Some(algo)).await {
                        Some(bufs) => bufs.concat(),
                        None => Vec::new(),
                    }
                }
            });
            assert_eq!(
                got[root],
                inputs.concat(),
                "gather {algo:?} trial {trial} ranks {ranks} len {len} root {root}"
            );
            for (r, buf) in got.iter().enumerate() {
                assert!(r == root || buf.is_empty(), "non-root {r} got data");
            }
        }
    }
}

/// Barriers complete under every algorithm at several scales.
#[test]
fn barrier_completes_under_every_algorithm() {
    for ranks in [2, 3, 5, 8, 13] {
        for algo in ALL_ALGOS {
            let got = run_world(cfg(ranks), None, move |comm, ctx| async move {
                comm.barrier_with(&ctx, Some(algo)).await;
                vec![comm.rank() as u8]
            });
            assert_eq!(got.len(), ranks, "barrier {algo:?} at {ranks} ranks");
        }
    }
}

/// Collectives complete exactly-once over a lossy fabric (1% frame
/// loss): the reliability layer retransmits under the collective DAG
/// without the application noticing, and results stay byte-correct.
#[test]
fn collectives_survive_lossy_fabric() {
    let seed = fault_seed();
    let mut fabric = FabricParams::myri10g();
    fabric.fault = FaultPlan::loss(seed, 0.01);
    let config = ClusterConfig {
        nodes: 4,
        fabric,
        ..ClusterConfig::default()
    };
    let inputs: Vec<Vec<u8>> = (0..4).map(|r| payload(900 + r as u64, 48 << 10)).collect();
    let expected = wrap_sum(&inputs);
    let ins = inputs.clone();
    let got = run_world(config, Some(COLL_DEADLINE), move |comm, ctx| {
        let data = ins[comm.rank()].clone();
        let bline = ins[0].clone();
        async move {
            comm.barrier(&ctx).await;
            let sum = comm.allreduce(&ctx, data, ReduceOp::WrapAdd8).await;
            let bc = comm
                .bcast(&ctx, 0, if comm.rank() == 0 { bline } else { Vec::new() })
                .await;
            let mut out = sum;
            out.extend_from_slice(&bc);
            out
        }
    });
    let mut reference = expected;
    reference.extend_from_slice(&inputs[0]);
    for (r, buf) in got.iter().enumerate() {
        assert_eq!(buf, &reference, "seed {seed} rank {r}");
    }
}

/// The satellite regression: a binomial-tree bcast costs the root only
/// `ceil(log2 P)` sequential sends where the flat shape costs `P-1`.
/// Checked end-to-end through the engine's own counters at P = 8.
#[test]
fn tree_bcast_root_sends_log_p() {
    let p = 8usize;
    for (algo, expected_sends) in [(AlgoKind::Tree, 3u64), (AlgoKind::Flat, 7u64)] {
        let sends = Rc::new(RefCell::new(0u64));
        let sends2 = Rc::clone(&sends);
        run_world(cfg(p), None, move |comm, ctx| {
            let sends = Rc::clone(&sends2);
            async move {
                let data = if comm.rank() == 0 {
                    vec![7u8; 1 << 10]
                } else {
                    Vec::new()
                };
                comm.bcast_with(&ctx, 0, data, Some(algo)).await;
                if comm.rank() == 0 {
                    *sends.borrow_mut() = comm.coll_counters().sends;
                }
                Vec::new()
            }
        });
        assert_eq!(
            *sends.borrow(),
            expected_sends,
            "{algo:?} root sends at P={p}"
        );
    }
}

/// The ring exists for bandwidth: at 8 ranks × 1 MiB it must deliver at
/// least twice the flat algorithm's allreduce throughput.
#[test]
fn ring_allreduce_doubles_flat_throughput() {
    let flat = run_coll(CollOp::Allreduce, Some(AlgoKind::Flat), 8, 1 << 20, 2, 1);
    let ring = run_coll(CollOp::Allreduce, Some(AlgoKind::Ring), 8, 1 << 20, 2, 1);
    assert!(
        ring.us_per_op * 2.0 <= flat.us_per_op,
        "ring {:.1}µs vs flat {:.1}µs — less than 2× speedup",
        ring.us_per_op,
        flat.us_per_op
    );
}

/// The auto-selector must never lose to the flat reference at any
/// benched (size, ranks) point, for allreduce and bcast alike.
#[test]
fn auto_selection_never_slower_than_flat() {
    for op in [CollOp::Allreduce, CollOp::Bcast] {
        for ranks in [2usize, 4, 8] {
            for bytes in [256, 1 << 10, 32 << 10, 1 << 20] {
                let flat = run_coll(op, Some(AlgoKind::Flat), ranks, bytes, 2, 1);
                let auto = run_coll(op, None, ranks, bytes, 2, 1);
                assert!(
                    auto.us_per_op <= flat.us_per_op * 1.001,
                    "{op:?} auto {:.2}µs > flat {:.2}µs at {ranks} ranks × {bytes} B",
                    auto.us_per_op,
                    flat.us_per_op
                );
            }
        }
    }
}

/// Nonblocking collectives progress while the application computes: the
/// overlap counter accounts (virtually all of) the compute window.
#[test]
fn icoll_overlap_is_accounted() {
    let overlaps = Rc::new(RefCell::new(Vec::new()));
    let overlaps2 = Rc::clone(&overlaps);
    run_world(cfg(4), None, move |comm, ctx| {
        let overlaps = Rc::clone(&overlaps2);
        async move {
            let h = comm.iallreduce(&ctx, vec![comm.rank() as u8; 256 << 10], ReduceOp::WrapAdd8);
            ctx.compute(pm2_sim::SimDuration::from_micros(150)).await;
            let out = h.wait(&ctx).await;
            overlaps.borrow_mut().push(comm.coll_counters().overlap_ns);
            out
        }
    });
    for (r, ns) in overlaps.borrow().iter().enumerate() {
        assert!(
            *ns >= 100_000,
            "rank {r} overlapped only {ns} ns of a 150µs compute window"
        );
    }
}
