//! pm2-rma end-to-end: one-sided put/get/accumulate with passive-target
//! completion over the simulated cluster.
//!
//! The defining assertion of this suite is *progress for all*: the target
//! rank exposes a window once and then spins in pure compute — it never
//! calls into the library again — yet every put, get and accumulate
//! completes, applied by whoever runs PIOMAN progression (a stolen idle
//! core in the default configuration, or the dedicated progress thread of
//! [`PiomanConfig::progress_thread`] when idle polling is disabled).
//! Both modes are exercised clean and under a 1% lossy fabric, where the
//! PR-2 reliability layer must keep accumulates exactly-once.

use pioman::PiomanConfig;
use pm2_fabric::{FabricParams, FaultPlan};
use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;

/// Wedge guard (virtual time); the slowest lossy run ends in milliseconds.
const DEADLINE: SimTime = SimTime::from_secs(60);

/// Window id shared by the suite (each test builds its own cluster).
const WIN: u64 = 3;

/// Extra fault seed from the `ci.sh` matrix (`PM2_FAULT_SEED`), on top
/// of the three published seeds every run covers.
fn fault_seed() -> u64 {
    std::env::var("PM2_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Deterministic per-op payload.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i as u8).wrapping_mul(37) ^ (j as u8))
        .collect()
}

/// The dedicated-progress-thread configuration: stolen progression is
/// switched off entirely (no idle hook, no timer tasklet rearming on
/// armed-only work, no blocking-call watcher), so the spawned thread is
/// the only progression the node has.
fn progress_thread_cfg() -> PiomanConfig {
    PiomanConfig {
        idle_poll: false,
        timer_poll: false,
        blocking_call: false,
        progress_thread: true,
        ..PiomanConfig::default()
    }
}

fn lossy(engine: EngineKind, seed: u64) -> ClusterConfig {
    let mut fabric = FabricParams::myri10g();
    fabric.fault = FaultPlan::loss(seed, 0.01);
    ClusterConfig {
        fabric,
        ..ClusterConfig::paper_testbed(engine)
    }
}

/// The canonical passive-target exchange: node 1 exposes the window and
/// computes; node 0 puts a 4 KiB pattern, accumulates 16 ones into a
/// shared slot, flushes, then gets both regions back and verifies them.
/// Returns the run end time.
fn run_passive_exchange(cluster: &Cluster) -> SimTime {
    {
        let rma = cluster.rma(1).clone();
        cluster.spawn_on(1, "target", move |ctx| async move {
            rma.window_create(&ctx, WIN, 16 << 10).await;
            // Passive from here on: pure compute, no library calls.
            ctx.compute(SimDuration::from_millis(3)).await;
        });
    }
    {
        let rma = cluster.rma(0).clone();
        cluster.spawn_on(0, "origin", move |ctx| async move {
            // Let the target's t=0 window registration land first.
            ctx.compute(SimDuration::from_micros(5)).await;
            let win = rma.window(WIN);
            let pat = payload(1, 4 << 10);
            win.put(&ctx, NodeId(1), 0, pat.clone());
            for _ in 0..16 {
                win.accumulate(&ctx, NodeId(1), 8 << 10, vec![1u8; 8]);
            }
            win.flush(&ctx).await;
            // Read-your-writes after flush: both regions as written.
            let g_put = win.get(&ctx, NodeId(1), 0, 4 << 10);
            let g_acc = win.get(&ctx, NodeId(1), 8 << 10, 8);
            win.flush(&ctx).await;
            assert_eq!(g_put.take_result().expect("get incomplete"), pat);
            assert_eq!(g_acc.take_result().expect("get incomplete"), vec![16u8; 8]);
            assert_eq!(rma.inflight(), 0);
        });
    }
    let end = cluster.run_deadline(DEADLINE);
    assert!(end < DEADLINE, "passive-target run wedged");

    let c0 = cluster.session(0).counters();
    let c1 = cluster.session(1).counters();
    assert_eq!((c0.rma_puts, c0.rma_accs, c0.rma_gets), (1, 16, 2));
    assert!(
        c1.rma_applied >= 17,
        "target applied {} ops, expected the full exchange",
        c1.rma_applied
    );
    assert!(c1.rma_acks_tx >= 17, "target acked {}", c1.rma_acks_tx);
    // One-sided traffic never ticks the two-sided send counter, so the
    // PR-2 message-balance invariant holds vacuously on both sides.
    for c in [&c0, &c1] {
        assert_eq!(c.eager_msgs_tx + c.rdv_started, c.sends);
    }
    for n in 0..2 {
        assert!(
            cluster.session(n).debug_state().is_clean(),
            "node {n} left residual protocol state"
        );
    }
    end
}

/// Default PIOMAN configuration: the target's idle cores steal the
/// progression. The target makes zero library calls after the exposure —
/// its PIOMAN server records no waits — and every apply runs in the idle
/// hook.
#[test]
fn passive_target_stolen_progression() {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    run_passive_exchange(&cluster);
    let st = cluster.pioman(1).expect("pioman engine").stats();
    assert_eq!(st.waits, 0, "passive target entered a library wait");
    assert!(st.hook_progress > 0, "no stolen progression on the target");
    assert_eq!(st.thread_progress, 0, "no progress thread was configured");
}

/// Zero-idle-core mode: stolen progression is disabled and the target's
/// remaining cores are saturated with compute threads, so the dedicated
/// progress thread is the only thing that can complete the exchange.
#[test]
fn passive_target_progress_thread_mode() {
    let cluster = Cluster::build(ClusterConfig {
        pioman: progress_thread_cfg(),
        ..ClusterConfig::paper_testbed(EngineKind::Pioman)
    });
    // Saturate the target: 7 compute threads + the progress thread cover
    // all 8 cores, so no core ever idles into the (disabled) hook.
    for i in 0..7 {
        cluster.spawn_on(1, format!("burn{i}"), move |ctx| async move {
            ctx.compute(SimDuration::from_millis(2)).await;
        });
    }
    run_passive_exchange(&cluster);
    let st = cluster.pioman(1).expect("pioman engine").stats();
    assert_eq!(st.waits, 0, "passive target entered a library wait");
    assert_eq!(st.hook_progress, 0, "idle hook ran while disabled");
    assert!(
        st.thread_progress > 0,
        "dedicated progress thread never progressed the target"
    );
}

/// 1% frame loss across the published seed matrix, both progression
/// modes: `n` accumulates of 1 into each byte of a slot must land as
/// exactly `n` — a lost frame would undershoot (retransmission closes the
/// gap), a duplicated apply would overshoot — and a flush-then-get must
/// observe every prior write (flush ordering). Loss must actually occur
/// across the matrix for the run to prove anything.
#[test]
fn lossy_accumulate_exactly_once_across_seeds() {
    let mut seeds = vec![1u64, 7, 42];
    if !seeds.contains(&fault_seed()) {
        seeds.push(fault_seed());
    }
    for thread_mode in [false, true] {
        let mut dropped = 0u64;
        for &seed in &seeds {
            let mut cfg = lossy(EngineKind::Pioman, seed);
            if thread_mode {
                cfg.pioman = progress_thread_cfg();
            }
            let cluster = Cluster::build(cfg);
            {
                let rma = cluster.rma(1).clone();
                cluster.spawn_on(1, "target", move |ctx| async move {
                    rma.window_create(&ctx, WIN, 64 << 10).await;
                    ctx.compute(SimDuration::from_millis(8)).await;
                });
            }
            {
                let rma = cluster.rma(0).clone();
                cluster.spawn_on(0, "origin", move |ctx| async move {
                    ctx.compute(SimDuration::from_micros(5)).await;
                    let win = rma.window(WIN);
                    for i in 0..48usize {
                        win.accumulate(&ctx, NodeId(1), 0, vec![1u8; 8]);
                        // Interleave eager and chunked-DMA puts so loss
                        // hits every frame class of the protocol.
                        let len = if i % 3 == 0 { 48 << 10 } else { 256 };
                        win.put(&ctx, NodeId(1), 64, payload(i, len));
                    }
                    win.flush(&ctx).await;
                    let g = win.get(&ctx, NodeId(1), 0, 8);
                    win.flush(&ctx).await;
                    assert_eq!(
                        g.take_result().expect("get incomplete"),
                        vec![48u8; 8],
                        "accumulate not exactly-once (seed {seed}, thread_mode {thread_mode})"
                    );
                });
            }
            let end = cluster.run_deadline(DEADLINE);
            assert!(end < DEADLINE, "lossy run wedged (seed {seed})");
            for n in 0..2 {
                let nic = cluster.nic_counters(n, 0);
                dropped += nic.faults_dropped + nic.faults_corrupted;
                assert!(
                    cluster.session(n).debug_state().is_clean(),
                    "node {n} left residual protocol state (seed {seed})"
                );
            }
        }
        assert!(
            dropped > 0,
            "fault matrix destroyed no frames — the exactly-once claim is vacuous"
        );
    }
}

/// Large puts take the chunked DMA path (64 KiB chunks): a 200 KiB put is
/// four chunks that must reassemble byte-exact, clean and under loss.
#[test]
fn large_put_chunked_roundtrip() {
    for cfg in [
        ClusterConfig::paper_testbed(EngineKind::Pioman),
        lossy(EngineKind::Pioman, 7),
    ] {
        let cluster = Cluster::build(cfg);
        let pat = payload(9, 200 << 10);
        {
            let rma = cluster.rma(1).clone();
            cluster.spawn_on(1, "target", move |ctx| async move {
                rma.window_create(&ctx, WIN, 256 << 10).await;
                ctx.compute(SimDuration::from_millis(5)).await;
            });
        }
        {
            let rma = cluster.rma(0).clone();
            let pat = pat.clone();
            cluster.spawn_on(0, "origin", move |ctx| async move {
                ctx.compute(SimDuration::from_micros(5)).await;
                let win = rma.window(WIN);
                win.put(&ctx, NodeId(1), 4 << 10, pat.clone());
                win.flush(&ctx).await;
                let g = win.get(&ctx, NodeId(1), 4 << 10, 200 << 10);
                win.flush(&ctx).await;
                assert_eq!(g.take_result().expect("get incomplete"), pat);
            });
        }
        let end = cluster.run_deadline(DEADLINE);
        assert!(end < DEADLINE, "chunked put wedged");
        // Four chunks applied (the final chunk completes the op) plus the
        // readback get.
        assert!(cluster.session(1).counters().rma_applied >= 2);
    }
}

/// The sequential engine keeps the paper's motivating limitation
/// observable: there is nobody to steal progression, so one-sided traffic
/// only completes while *both* peers are inside the library. The target
/// here blocks in a `recv` (progressing the engine from within) until the
/// origin releases it with a regular send after flushing.
#[test]
fn sequential_engine_requires_target_in_library() {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Sequential));
    {
        let rma = cluster.rma(1).clone();
        let sess = cluster.session(1).clone();
        cluster.spawn_on(1, "target", move |ctx| async move {
            rma.window_create(&ctx, WIN, 16 << 10).await;
            // In-library the whole time: recv polls progression.
            let release = sess.recv(&ctx, Some(NodeId(0)), Tag(99)).await;
            assert_eq!(release, vec![7u8; 64]);
            let w = rma.window(WIN);
            assert_eq!(w.read_local(0, 8), vec![12u8; 8]);
        });
    }
    {
        let rma = cluster.rma(0).clone();
        let sess = cluster.session(0).clone();
        cluster.spawn_on(0, "origin", move |ctx| async move {
            ctx.compute(SimDuration::from_micros(5)).await;
            let win = rma.window(WIN);
            for _ in 0..12 {
                win.accumulate(&ctx, NodeId(1), 0, vec![1u8; 8]);
            }
            win.flush(&ctx).await;
            sess.send(&ctx, NodeId(1), Tag(99), vec![7u8; 64]).await;
        });
    }
    let end = cluster.run_deadline(DEADLINE);
    assert!(end < DEADLINE, "sequential RMA wedged");
    assert_eq!(cluster.session(1).counters().rma_applied, 12);
}

/// Self-target ops apply at stage time on every engine — no frames, no
/// progression involved.
#[test]
fn self_target_ops_apply_locally() {
    for engine in [EngineKind::Pioman, EngineKind::Sequential] {
        let cluster = Cluster::build(ClusterConfig::paper_testbed(engine));
        cluster.spawn_on(0, "local", {
            let rma = cluster.rma(0).clone();
            move |ctx| async move {
                let win = rma.window_create(&ctx, WIN, 4 << 10).await;
                win.put(&ctx, NodeId(0), 0, vec![5u8; 128]);
                win.accumulate(&ctx, NodeId(0), 0, vec![2u8; 8]);
                let g = win.get(&ctx, NodeId(0), 0, 8);
                win.flush(&ctx).await;
                assert_eq!(g.take_result().expect("get incomplete"), vec![7u8; 8]);
                assert_eq!(win.read_local(8, 8), vec![5u8; 8]);
            }
        });
        let end = cluster.run_deadline(DEADLINE);
        assert!(end < DEADLINE, "self-target wedged ({engine:?})");
        assert!(cluster.session(0).debug_state().is_clean());
    }
}

/// The passive-target stream under the pm2-verify analyzer: zero
/// findings over a non-vacuous observation count, the analyzer perturbs
/// nothing (bit-identical end time), and the only cross-section nesting
/// it saw is the one the design allows (registry → session state).
#[test]
fn verified_passive_stream_is_clean() {
    let run = |verify: bool| {
        let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
        cluster.sim().verify().set_enabled(verify);
        let end = run_passive_exchange(&cluster);
        let counts = cluster.sim().verify().counts();
        if verify {
            cluster.sim().verify().assert_clean();
            let edges = cluster.sim().verify().lock_edges();
            assert!(
                edges
                    .iter()
                    .any(|&(f, t, n)| f == "pioman.registry" && t == "newmad.state" && n > 0),
                "registry→state edge never exercised on the RMA path: {edges:?}"
            );
        }
        (end, counts)
    };
    let (t_off, counts_off) = run(false);
    assert_eq!(counts_off, (0, 0), "disabled analyzer recorded");
    let (t_on, (acquires, touches)) = run(true);
    assert_eq!(t_off, t_on, "verify-on RMA run diverged in virtual time");
    assert!(
        acquires > 0 && touches > 0,
        "clean verdict is vacuous: {acquires} acquires, {touches} touches"
    );
}

/// Same seed, policy and fault plan ⇒ identical virtual end time and
/// counters, in both progression modes (the injection-endpoint global
/// rank makes cross-thread injection order replayable).
#[test]
fn rma_runs_are_deterministic() {
    for thread_mode in [false, true] {
        let build = || {
            let mut cfg = lossy(EngineKind::Pioman, 42);
            if thread_mode {
                cfg.pioman = progress_thread_cfg();
            }
            Cluster::build(cfg)
        };
        let observe = |cluster: &Cluster| {
            let end = run_passive_exchange(cluster);
            let c1 = cluster.session(1).counters();
            let nic = cluster.nic_counters(0, 0);
            (end, c1.rma_applied, c1.rma_acks_tx, nic.tx_frames)
        };
        let a = observe(&build());
        let b = observe(&build());
        assert_eq!(
            a, b,
            "RMA run not deterministic (thread_mode {thread_mode})"
        );
    }
}

/// Large `RmaGetReply` traffic takes the chunked path like large puts
/// (PR-10): a 200 KiB get comes back as four 64 KiB `RmaGetData` frames
/// that must reassemble byte-exact across the lossy seed matrix, with
/// the reply assembly fully drained afterwards.
#[test]
fn large_get_reply_chunks_survive_loss() {
    let mut seeds = vec![1u64, 7, 42];
    if !seeds.contains(&fault_seed()) {
        seeds.push(fault_seed());
    }
    const LEN: usize = 200 << 10;
    let mut dropped = 0u64;
    for &seed in &seeds {
        // The exchange is only ~20 frames, so the suite-wide 1% plan
        // rarely hits it; 8% guarantees the reply chunks see real loss.
        let mut cfg = lossy(EngineKind::Pioman, seed);
        cfg.fabric.fault = FaultPlan::loss(seed, 0.08);
        let cluster = Cluster::build(cfg);
        let pat = payload(11, LEN);
        {
            let rma = cluster.rma(1).clone();
            cluster.spawn_on(1, "target", move |ctx| async move {
                rma.window_create(&ctx, WIN, 256 << 10).await;
                ctx.compute(SimDuration::from_millis(5)).await;
            });
        }
        {
            let rma = cluster.rma(0).clone();
            let pat = pat.clone();
            cluster.spawn_on(0, "origin", move |ctx| async move {
                ctx.compute(SimDuration::from_micros(5)).await;
                let win = rma.window(WIN);
                win.put(&ctx, NodeId(1), 0, pat.clone());
                win.flush(&ctx).await;
                let g = win.get(&ctx, NodeId(1), 0, LEN);
                win.flush(&ctx).await;
                assert_eq!(
                    g.take_result().expect("get incomplete"),
                    pat,
                    "chunked get reply corrupted (seed {seed})"
                );
                assert_eq!(rma.inflight(), 0);
            });
        }
        let end = cluster.run_deadline(DEADLINE);
        assert!(end < DEADLINE, "lossy 200 KiB get wedged (seed {seed})");
        for n in 0..2 {
            let nic = cluster.nic_counters(n, 0);
            dropped += nic.faults_dropped + nic.faults_corrupted;
            assert!(
                cluster.session(n).debug_state().is_clean(),
                "node {n} left residual reply-assembly state (seed {seed})"
            );
        }
    }
    assert!(
        dropped > 0,
        "no frame was ever dropped — the lossy-get claim is vacuous"
    );
}
