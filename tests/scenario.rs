//! pm2-scenario suite tests: determinism of the scored reports, law
//! bounds of the traffic generators, SLO verdicts in both directions
//! (nominal specs pass, the overload probe fails) and comm-signal
//! hygiene under thousands of concurrent client streams.
//!
//! `ci.sh` runs this file across the published fault-seed matrix
//! (`PM2_FAULT_SEED` ∈ {1, 7, 42}), so every assertion here holds under
//! injected frame loss as well as on a clean fabric.

use pm2_scenario::{
    builtin_suite, nominal_suite, overload_spec, run_scenario, ArrivalLaw, ScenarioSpec, SizeMix,
    SloSpec, TrafficPattern, Workload, MIN_PAYLOAD, POLICIES,
};
use pm2_sim::rng::Xoshiro256;
use pm2_sim::SimTime;

/// Seed of the fault-plan stream; `ci.sh` sweeps the published matrix.
fn fault_seed() -> u64 {
    std::env::var("PM2_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Same `(spec seed, policy, fault seed)` ⇒ byte-identical scored report:
/// the property `BENCH_scenarios.json` diffs rely on.
#[test]
fn same_seed_same_policy_byte_identical_report() {
    let spec = &builtin_suite(true)[1]; // incast + Pareto: the busiest laws
    for policy in ["hier", "comm"] {
        let a = run_scenario(spec, policy, fault_seed());
        let b = run_scenario(spec, policy, fault_seed());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{policy}: scenario replay diverged"
        );
        assert_eq!(a.end_us, b.end_us);
    }
}

/// Arrival laws never step outside their advertised bounds, across seeds
/// and thousands of samples (hand-rolled property loop, repo idiom).
#[test]
fn arrival_laws_respect_their_bounds() {
    let laws = [
        ArrivalLaw::Poisson { mean_gap_us: 50.0 },
        ArrivalLaw::Pareto {
            scale_us: 5.0,
            alpha: 1.5,
            cap_us: 500.0,
        },
        ArrivalLaw::Pareto {
            scale_us: 1.0,
            alpha: 0.8, // infinite-mean tail still respects the clamp
            cap_us: 10_000.0,
        },
        ArrivalLaw::Closed,
    ];
    for seed in [1u64, 7, 42, 0xDEAD] {
        for law in &laws {
            let (lo, hi) = law.bounds_us();
            let mut rng = Xoshiro256::new(seed);
            let mut sum = 0.0;
            for _ in 0..10_000 {
                let gap = law.sample(&mut rng).as_micros_f64();
                // Samples round to nanoseconds, so allow that much slack
                // on the lower edge.
                assert!(
                    gap >= lo - 1e-3 && gap <= hi,
                    "{law:?} seed {seed}: gap {gap}us outside [{lo}, {hi}]"
                );
                sum += gap;
            }
            if let ArrivalLaw::Poisson { mean_gap_us } = law {
                let mean = sum / 10_000.0;
                assert!(
                    (mean - mean_gap_us).abs() < mean_gap_us * 0.2,
                    "seed {seed}: Poisson mean drifted to {mean}us"
                );
            }
        }
    }
}

/// Size mixes stay inside their declared band(s), never under the
/// timestamp floor, and the suite's service specs keep the bands on the
/// correct side of the paper testbed's 32 KiB rendezvous threshold.
#[test]
fn size_mixes_respect_bands_and_threshold() {
    const RDV_THRESHOLD: usize = 32 << 10;
    for seed in [1u64, 7, 42] {
        let mix = SizeMix {
            eager_frac: 0.7,
            eager: (64, 8 << 10),
            rdv: (48 << 10, 96 << 10),
        };
        let mut rng = Xoshiro256::new(seed);
        let (mut saw_eager, mut saw_rdv) = (false, false);
        for _ in 0..10_000 {
            let len = mix.sample(&mut rng);
            assert!(len >= MIN_PAYLOAD);
            let in_eager = (mix.eager.0..=mix.eager.1).contains(&len);
            let in_rdv = (mix.rdv.0..=mix.rdv.1).contains(&len);
            assert!(
                in_eager || in_rdv,
                "seed {seed}: {len} B outside both bands"
            );
            saw_eager |= in_eager;
            saw_rdv |= in_rdv;
        }
        assert!(saw_eager && saw_rdv, "seed {seed}: mix never used one band");
        // Degenerate mixes stay on their single band.
        let mut rng = Xoshiro256::new(seed);
        let eager_only = SizeMix::eager_only(4, 1024);
        for _ in 0..1_000 {
            let len = eager_only.sample(&mut rng);
            assert!((MIN_PAYLOAD..=1024).contains(&len));
        }
    }
    // Bands the suite actually draws from must sit on the correct side
    // of the threshold (a degenerate mix's unused band is exempt).
    for spec in builtin_suite(false) {
        if let Workload::Service { sizes, .. } = &spec.workload {
            if sizes.eager_frac > 0.0 {
                assert!(
                    sizes.eager.1 < RDV_THRESHOLD,
                    "{}: eager band crosses the rendezvous threshold",
                    spec.name
                );
            }
            if sizes.eager_frac < 1.0 {
                assert!(
                    sizes.rdv.0 >= RDV_THRESHOLD,
                    "{}: rdv band below the rendezvous threshold",
                    spec.name
                );
            }
        }
    }
}

/// Every nominal spec passes its SLO — across the whole policy set and
/// whatever fault seed the matrix supplies — and conserves messages.
#[test]
fn nominal_specs_pass_their_slo_under_every_policy() {
    for spec in nominal_suite(true) {
        for policy in POLICIES {
            let o = run_scenario(&spec, policy, fault_seed());
            assert!(
                o.slo_pass,
                "{}/{policy} seed {}: SLO violated: {:?} \
                 (p50 {:.1} p99 {:.1} p999 {:.1})",
                spec.name,
                fault_seed(),
                o.violations,
                o.p50_us,
                o.p99_us,
                o.p999_us
            );
            assert!(o.samples > 0);
            assert!(
                o.counters_balanced,
                "{}/{policy}: counters out of balance",
                spec.name
            );
            assert_eq!(o.waits_leaked, 0, "{}/{policy}", spec.name);
        }
    }
}

/// The deliberate-overload probe must FAIL its SLO: a harness that cannot
/// flag a saturated service cannot flag a regression either. Delivery
/// still completes (the runner asserts exactly-once internally) — the
/// service is slow, not broken.
#[test]
fn overload_spec_fails_its_slo() {
    for smoke in [true, false] {
        let spec = overload_spec(smoke);
        let o = run_scenario(&spec, "hier", fault_seed());
        assert!(
            !o.slo_pass,
            "smoke={smoke}: overload incast met a nominal SLO \
             (p50 {:.1} p99 {:.1} p999 {:.1}) — thresholds are too loose \
             to catch regressions",
            o.p50_us, o.p99_us, o.p999_us
        );
        assert!(!o.violations.is_empty());
        assert!(o.counters_balanced, "smoke={smoke}");
    }
}

/// Comm-signal hygiene at service scale: thousands of concurrent client
/// streams, each bracketing waits through the Marcel signal table. After
/// quiescence no bracket stays open and the bounded table has not grown
/// past its cap (the runner asserts the cap on every node).
#[test]
fn comm_signals_quiesce_under_thousands_of_streams() {
    let spec = ScenarioSpec {
        name: "signal_storm",
        ranks: 2,
        seed: 0x516,
        workload: Workload::Service {
            streams_per_rank: 1_024,
            msgs_per_stream: 1,
            arrival: ArrivalLaw::Closed,
            sizes: SizeMix::eager_only(64, 256),
            pattern: TrafficPattern::Uniform,
        },
        fault_loss: 0.0,
        slo: SloSpec {
            p50_us: SloSpec::NONE,
            p99_us: SloSpec::NONE,
            p999_us: SloSpec::NONE,
        },
        deadline: SimTime::from_secs(60),
    };
    let o = run_scenario(&spec, "comm", fault_seed());
    assert_eq!(o.samples, 2_048, "one latency sample per stream");
    assert_eq!(o.waits_leaked, 0, "open wait brackets after quiescence");
    assert!(o.counters_balanced);
}
