//! Integration tests of the pm2-obs structured-observability layer.
//!
//! The contract under test: enabling observation never changes what the
//! simulation *does* — event records live in side tables, cost no virtual
//! time and schedule no events — while an enabled run yields enough
//! structure to replay every request's life (eager: posted → submit →
//! deliver → complete; rendezvous: RTS → CTS → DMA → complete) with the
//! progression site of each submission attached.

use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_newmad::{EngineKind, NmCounters, Tag};
use pm2_sim::obs::{build_timelines, Role, Site, Timelines};
use pm2_sim::{MetricsRegistry, SimDuration, SimTime};
use pm2_topo::NodeId;

const EAGER_LEN: usize = 8 << 10;
const RDV_LEN: usize = 64 << 10;
const DEADLINE: SimTime = SimTime::from_secs(60);

/// The fig5 overlap loop at one eager and one rendezvous size, plus a
/// closing allreduce; returns the end time, node-0 counters and the
/// reconstructed timelines (empty when observation stayed off).
fn run_observed(enabled: bool, capacity: Option<usize>) -> (SimTime, NmCounters, Timelines, u64) {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    cluster.sim().obs().set_enabled(enabled);
    if let Some(cap) = capacity {
        cluster.sim().obs().set_capacity(cap);
    }
    let comms = Comm::world(&cluster);
    let compute = SimDuration::from_micros(20);
    let sizes = [EAGER_LEN, EAGER_LEN, RDV_LEN];
    {
        let s = cluster.session(0).clone();
        let comm = comms[0].clone();
        cluster.spawn_on(0, "obs-0", move |ctx| async move {
            for (i, len) in sizes.into_iter().enumerate() {
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xa5; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
                let hr = s.irecv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
            }
            comm.allreduce_sum(&ctx, 1).await;
        });
    }
    {
        let s = cluster.session(1).clone();
        let comm = comms[1].clone();
        cluster.spawn_on(1, "obs-1", move |ctx| async move {
            for (i, len) in sizes.into_iter().enumerate() {
                let hr = s.irecv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let h = s
                    .isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), vec![0x5a; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
            }
            comm.allreduce_sum(&ctx, 1).await;
        });
    }
    let end = cluster.run_deadline(DEADLINE);
    let timelines = build_timelines(&cluster.sim().obs().events());
    (
        end,
        cluster.session(0).counters(),
        timelines,
        cluster.sim().obs().dropped(),
    )
}

/// Observation must be a pure readout: the enabled run ends at the very
/// same virtual instant with the very same protocol counters as the
/// disabled one, and the disabled run records nothing.
#[test]
fn enabling_observation_does_not_perturb_the_run() {
    let (end_off, counters_off, timelines_off, _) = run_observed(false, None);
    let (end_on, counters_on, timelines_on, _) = run_observed(true, None);
    assert_eq!(end_off, end_on, "observation changed virtual time");
    assert_eq!(
        counters_off, counters_on,
        "observation changed the protocol"
    );
    assert!(timelines_off.reqs.is_empty() && timelines_off.rdvs.is_empty());
    assert!(!timelines_on.reqs.is_empty());
}

/// A tiny event ring drops records (and says so) without touching the
/// simulation itself.
#[test]
fn capped_event_ring_drops_but_does_not_perturb() {
    let (end_full, _, _, dropped_full) = run_observed(true, None);
    let (end_capped, _, timelines, dropped) = run_observed(true, Some(16));
    assert_eq!(end_full, end_capped, "ring capacity changed virtual time");
    assert_eq!(dropped_full, 0);
    assert!(dropped > 0, "a 16-slot ring should have overflowed");
    // Whatever survived still parses into (partial) timelines.
    let _ = timelines.to_json();
}

/// The enabled run reconstructs the eager path: posted ≤ first
/// submission ≤ completion, a progression-site attribution on the
/// sender, and a delivery verdict on the receiver.
#[test]
fn eager_timelines_reconstruct_with_site_attribution() {
    let (_, _, timelines, _) = run_observed(true, None);
    let sends: Vec<_> = timelines
        .reqs
        .iter()
        .filter(|r| r.role == Role::Send && r.len == Some(EAGER_LEN))
        .collect();
    assert_eq!(sends.len(), 4, "two eager rounds in each direction");
    for r in sends {
        let submit = r.submit_at.expect("eager send was submitted");
        let done = r.completed_at.expect("eager send completed");
        assert!(r.posted_at <= submit && submit <= done, "req {}", r.req);
        let site = r.submit_site.expect("submission site recorded");
        assert_ne!(
            site,
            Site::App,
            "PIOMAN-engine submissions happen under a progression site"
        );
        assert!(r.latency_ns.is_some());
    }
    let recvs: Vec<_> = timelines
        .reqs
        .iter()
        .filter(|r| r.role == Role::Recv && r.delivered_at.is_some())
        .collect();
    assert!(!recvs.is_empty(), "no eager delivery observed");
    for r in recvs {
        assert!(r.unexpected.is_some(), "delivery without expectedness");
        assert!(r.delivered_at.unwrap() <= r.completed_at.expect("recv completed"));
    }
}

/// The enabled run reconstructs the rendezvous handshake in causal
/// order, with the DMA chunks and both request ids attached.
#[test]
fn rendezvous_timelines_reconstruct_the_handshake() {
    let (_, _, timelines, _) = run_observed(true, None);
    let rdvs: Vec<_> = timelines
        .rdvs
        .iter()
        .filter(|v| v.len == Some(RDV_LEN))
        .collect();
    assert_eq!(rdvs.len(), 2, "one rendezvous round in each direction");
    for v in rdvs {
        let rts_tx = v.rts_tx.expect("RTS issued");
        let rts_rx = v.rts_rx.expect("RTS observed");
        let cts_tx = v.cts_tx.expect("CTS issued");
        let cts_rx = v.cts_rx.expect("CTS observed");
        let done = v.completed_at.expect("transfer completed");
        assert!(
            rts_tx <= rts_rx && rts_rx <= cts_tx && cts_tx <= cts_rx && cts_rx <= done,
            "handshake out of causal order: {v:?}"
        );
        assert!(v.dma_chunks >= 1, "no data moved: {v:?}");
        assert!(v.dma_first_tx.is_some() && v.dma_last_rx.is_some());
        assert!(v.send_req.is_some() && v.recv_req.is_some());
        assert!(v.matched.is_some());
    }
}

/// One registry snapshot unifies every counter family — NewMadeleine,
/// PIOMAN, NIC (fault counters included), collectives and the request
/// latency histograms — and its JSON export carries the schema marker.
#[test]
fn metrics_registry_unifies_all_counter_families() {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    cluster.sim().obs().set_enabled(true);
    let reg = MetricsRegistry::new();
    cluster.register_metrics(&reg);
    let comms = Comm::world(&cluster);
    for comm in &comms {
        comm.register_metrics(&reg);
    }
    for (rank, comm) in comms.into_iter().enumerate() {
        cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
            comm.allreduce_sum(&ctx, comm.rank() as u64 + 1).await;
        });
    }
    cluster.run_deadline(DEADLINE);
    let snapshot = reg.snapshot();
    for group in [
        "nm.node0",
        "nm.node1",
        "pioman.node0",
        "nic.node0.rail0",
        "coll.rank0",
        "latency",
    ] {
        assert!(
            snapshot.iter().any(|(name, _)| name == group),
            "group {group} missing from snapshot"
        );
    }
    let get = |group: &str, key: &str| -> f64 {
        snapshot
            .iter()
            .find(|(name, _)| name == group)
            .and_then(|(_, vals)| vals.iter().find(|(k, _)| k == key))
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{group}.{key} missing"))
    };
    assert!(get("nm.node0", "sends") >= 1.0);
    assert_eq!(get("nic.node0.rail0", "faults_dropped"), 0.0);
    assert_eq!(get("coll.rank0", "collectives"), 1.0);
    assert!(get("latency", "send.count") >= 1.0);
    assert!(get("latency", "recv.p99_ns") > 0.0);
    let json = reg.to_json();
    assert!(json.contains("\"schema\": \"pm2-obs-metrics/v1\""));
    assert!(json.contains("\"faults_corrupted\""));
}
