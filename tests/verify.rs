//! pm2-verify end-to-end: full-stack workloads run with the sim-level
//! lock-order / happens-before analyzer enabled must (a) report zero
//! findings — the engine's locking discipline is consistent and every
//! completion is properly published before it is observed — and (b) leave
//! virtual time bit-for-bit identical to a verify-off run of the same
//! seed, because the analyzer only ever records, never schedules.
//!
//! The non-vacuousness guards ([`pm2_sim::Verify::counts`]) matter: a
//! clean report over zero observations would prove nothing.

use pm2_fabric::{FabricParams, FaultPlan};
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

/// Wedge guard for the lossy run (virtual time).
const DEADLINE: SimTime = SimTime::from_secs(60);

/// 4-node all-to-all with mixed eager/rendezvous sizes (the
/// `four_node_all_to_all` integration workload), optionally verified.
fn all_to_all(engine: EngineKind, verify: bool) -> (SimTime, (u64, u64)) {
    let cluster = Cluster::build(ClusterConfig {
        nodes: 4,
        ..ClusterConfig::paper_testbed(engine)
    });
    cluster.sim().verify().set_enabled(verify);
    for me in 0..4usize {
        let s = cluster.session(me).clone();
        cluster.spawn_on(me, format!("rank{me}"), move |ctx| async move {
            let mut handles = Vec::new();
            for peer in 0..4 {
                if peer == me {
                    continue;
                }
                let len = 1 << (10 + ((me + peer) % 7)); // 1K..64K
                let tag = Tag((me * 4 + peer) as u64);
                handles.push(s.isend(&ctx, NodeId(peer), tag, vec![me as u8; len]).await);
            }
            ctx.compute(SimDuration::from_micros(30)).await;
            for h in &handles {
                s.swait_send(h, &ctx).await;
            }
            for peer in 0..4usize {
                if peer == me {
                    continue;
                }
                let tag = Tag((peer * 4 + me) as u64);
                let data = s.recv(&ctx, Some(NodeId(peer)), tag).await;
                assert!(data.iter().all(|&b| b == peer as u8));
            }
        });
    }
    let end = cluster.run();
    let edges = cluster.sim().verify().lock_edges();
    if verify {
        cluster.sim().verify().assert_clean();
        if engine == EngineKind::Pioman {
            // The one nesting the design allows: the session state section
            // entered from a driver progress pass inside the registry walk.
            assert!(
                edges
                    .iter()
                    .any(|&(f, t, n)| f == "pioman.registry" && t == "newmad.state" && n > 0),
                "registry→state edge never exercised: {edges:?}"
            );
        }
    }
    (end, cluster.sim().verify().counts())
}

/// Both engines: verified all-to-all is clean, observes real traffic, and
/// the analyzer perturbs nothing (identical end times).
#[test]
fn p2p_all_to_all_is_clean_and_time_identical() {
    for engine in [EngineKind::Pioman, EngineKind::Sequential] {
        let (t_off, counts_off) = all_to_all(engine, false);
        assert_eq!(
            counts_off,
            (0, 0),
            "disabled analyzer recorded ({engine:?})"
        );
        let (t_on, counts_on) = all_to_all(engine, true);
        assert_eq!(
            t_off, t_on,
            "verify-on run diverged in virtual time ({engine:?})"
        );
        let (acquires, touches) = counts_on;
        assert!(
            acquires > 0 && touches > 0,
            "vacuous verify run ({engine:?}): acquires={acquires} touches={touches}"
        );
    }
}

/// Collectives + barriers + p2p (the `collectives_and_p2p_compose`
/// workload): the coll engine's counter sections and the nonblocking
/// completion path are clean under verification.
#[test]
fn collectives_compose_cleanly_under_verify() {
    let run = |verify: bool| -> (SimTime, (u64, u64)) {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        });
        cluster.sim().verify().set_enabled(verify);
        let comms = Comm::world(&cluster);
        let sums = Rc::new(RefCell::new(Vec::new()));
        for (rank, comm) in comms.into_iter().enumerate() {
            let sums = Rc::clone(&sums);
            cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
                for round in 0..3u64 {
                    let s = comm
                        .allreduce_sum(&ctx, (comm.rank() as u64 + 1) * (round + 1))
                        .await;
                    sums.borrow_mut().push(s);
                    comm.barrier(&ctx).await;
                    let next = (comm.rank() + 1) % comm.size();
                    let prev = (comm.rank() + comm.size() - 1) % comm.size();
                    let h = comm
                        .isend(&ctx, next, Tag(round), vec![comm.rank() as u8; 2048])
                        .await;
                    let data = comm.recv(&ctx, Some(prev), Tag(round)).await;
                    assert_eq!(data[0] as usize, prev);
                    comm.wait_send(&h, &ctx).await;
                    comm.barrier(&ctx).await;
                }
            });
        }
        let end = cluster.run();
        if verify {
            cluster.sim().verify().assert_clean();
        }
        assert_eq!(sums.borrow().len(), 9);
        (end, cluster.sim().verify().counts())
    };
    let (t_off, _) = run(false);
    let (t_on, (acquires, touches)) = run(true);
    assert_eq!(t_off, t_on, "verify-on collective run diverged");
    assert!(acquires > 0 && touches > 0, "vacuous collective verify run");
}

/// A lossy-fabric stream (drops on the eager data path, reliability layer
/// active): retransmission and duplicate-suppression paths are clean too.
#[test]
fn lossy_fabric_run_is_clean_under_verify() {
    let run = |verify: bool| -> (SimTime, (u64, u64)) {
        let mut fabric = FabricParams::myri10g();
        fabric.fault = FaultPlan {
            seed: 7,
            drop_rate: 0.04,
            ..FaultPlan::default()
        };
        let cluster = Cluster::build(ClusterConfig {
            fabric,
            ..ClusterConfig::paper_testbed(EngineKind::Pioman)
        });
        cluster.sim().verify().set_enabled(verify);
        {
            let s = cluster.session(0).clone();
            cluster.spawn_on(0, "tx", move |ctx| async move {
                for i in 0..12u64 {
                    s.send(&ctx, NodeId(1), Tag(i), vec![i as u8; 4096]).await;
                }
            });
        }
        {
            let s = cluster.session(1).clone();
            cluster.spawn_on(1, "rx", move |ctx| async move {
                for i in 0..12u64 {
                    let data = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
                    assert_eq!(data, vec![i as u8; 4096], "message {i} corrupted");
                }
            });
        }
        let end = cluster.run_deadline(DEADLINE);
        if verify {
            cluster.sim().verify().assert_clean();
        }
        (end, cluster.sim().verify().counts())
    };
    let (t_off, _) = run(false);
    let (t_on, (acquires, touches)) = run(true);
    assert!(t_on < DEADLINE, "lossy verify run wedged");
    assert_eq!(t_off, t_on, "verify-on lossy run diverged");
    assert!(acquires > 0 && touches > 0, "vacuous lossy verify run");
}

/// The gate actually gates: an inconsistently-ordered pair of sections
/// recorded on a real cluster's analyzer makes `report()` non-clean.
#[test]
fn seeded_inversion_is_reported_on_a_real_sim() {
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    let verify = cluster.sim().verify();
    verify.set_enabled(true);
    verify.lock_acquire("newmad.state");
    verify.lock_acquire("pioman.registry");
    verify.lock_release("pioman.registry");
    verify.lock_release("newmad.state");
    verify.lock_acquire("pioman.registry");
    verify.lock_acquire("newmad.state");
    verify.lock_release("newmad.state");
    verify.lock_release("pioman.registry");
    let report = verify.report();
    assert_eq!(report.lock_inversions.len(), 1);
    assert!(
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| verify.assert_clean())).is_err(),
        "assert_clean must fail on an inversion"
    );
}
