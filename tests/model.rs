//! pm2-model end-to-end: the explicit-state explorer over the faithful
//! protocol tables, mutation self-validation (every seeded bug must be
//! found and printed as a counterexample), and trace conformance of real
//! cluster runs against the same tables.
//!
//! The explorer tests pin *zero violations with the state space
//! exhausted* on the real tables across eager, rendezvous and RMA flows
//! under adversarial loss/duplication budgets; the mutation tests prove
//! the checker is not vacuous. `PM2_MODEL_DEEP=1` (the ci.sh `model`
//! lane) additionally explores larger configurations that are too slow
//! for a debug-profile tier-1 run.

use pm2_fabric::{FabricParams, FaultPlan};
use pm2_model::{
    check_trace, explore, AppOp, Cfg, ConformCfg, Limits, Mutation, Muts, OpKind, Report,
};
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::obs::Event;
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;

/// Wedge guard (virtual time) for the trace-generating cluster runs.
const DEADLINE: SimTime = SimTime::from_secs(60);

/// Whether the deep lane (ci.sh `model`) is active.
fn deep() -> bool {
    std::env::var("PM2_MODEL_DEEP").is_ok()
}

fn op(flow: u64, kind: OpKind) -> AppOp {
    AppOp { flow, kind }
}

/// Two ranks, all traffic scripted on rank 0.
fn two_rank(script0: Vec<AppOp>, max_retries: u32, drop: u8, dup: u8) -> Cfg {
    Cfg {
        ranks: 2,
        scripts: vec![script0, vec![]],
        max_retries,
        drop_budget: drop,
        dup_budget: dup,
    }
}

/// Explore and require: space exhausted, zero violations, and at least
/// one all-goals-met terminal. Prints the report on failure.
fn assert_clean(report: &Report, what: &str) {
    assert!(
        report.complete,
        "{what}: state-space bound hit\n{}",
        report.render()
    );
    assert!(
        report.violations.is_empty(),
        "{what}: unexpected violations\n{}",
        report.render()
    );
    assert!(
        report.success_terminals > 0,
        "{what}: no successful terminal reached\n{}",
        report.render()
    );
}

fn fires(report: &Report, rule: &str) -> u64 {
    report.rule_fires.get(rule).copied().unwrap_or(0)
}

// ---- faithful tables: zero violations ---------------------------------

/// One eager message under one adversarial drop and one duplication:
/// exactly-once delivery, window soundness, bounded retries.
#[test]
fn faithful_eager_under_loss_and_dup() {
    let cfg = two_rank(
        vec![op(
            1,
            OpKind::Eager {
                dst: 1,
                tag: 7,
                seq: 0,
            },
        )],
        2,
        1,
        1,
    );
    let report = explore(&cfg, &Muts::none(), Limits::default());
    assert_clean(&report, "eager drop+dup");
    assert!(fires(&report, "eager-deliver") > 0, "rule never exercised");
}

/// Three ranks fanning eager traffic into one receiver: the per-source
/// receive windows stay independent under a drop.
#[test]
fn faithful_eager_fan_in_three_ranks() {
    let cfg = Cfg {
        ranks: 3,
        scripts: vec![
            vec![op(
                1,
                OpKind::Eager {
                    dst: 2,
                    tag: 1,
                    seq: 0,
                },
            )],
            vec![op(
                2,
                OpKind::Eager {
                    dst: 2,
                    tag: 1,
                    seq: 0,
                },
            )],
            vec![],
        ],
        max_retries: 1,
        drop_budget: 1,
        dup_budget: 0,
    };
    let report = explore(&cfg, &Muts::none(), Limits::default());
    assert_clean(&report, "eager fan-in");
    assert!(fires(&report, "eager-deliver") > 0);
}

/// A chunked rendezvous under drop + dup: the RTS/CTS/DMA handshake
/// delivers exactly once and leaves no assembly behind.
#[test]
fn faithful_rendezvous_chunked() {
    let cfg = two_rank(vec![op(1, OpKind::Rdv { dst: 1, chunks: 2 })], 2, 1, 1);
    let report = explore(&cfg, &Muts::none(), Limits::default());
    assert_clean(&report, "rdv chunks=2");
    for rule in ["rts-fresh", "cts-fresh", "rdv-data-fresh"] {
        assert!(fires(&report, rule) > 0, "{rule} never exercised");
    }
}

/// A chunked put next to an accumulate, with one drop allowed: applies
/// stay exactly-once and the ack path completes both origin flows.
#[test]
fn faithful_chunked_put_and_accumulate() {
    let cfg = two_rank(
        vec![
            op(1, OpKind::RmaPut { dst: 1, chunks: 2 }),
            op(2, OpKind::RmaAcc { dst: 1 }),
        ],
        2,
        1,
        0,
    );
    let report = explore(&cfg, &Muts::none(), Limits::default());
    assert_clean(&report, "put+acc");
    for rule in ["rma-put-chunk-fresh", "rma-acc", "rma-ack-fresh"] {
        assert!(fires(&report, rule) > 0, "{rule} never exercised");
    }
}

/// Single-frame and chunked gets under one duplication: the reply path
/// (whole and chunked) completes the origin exactly once.
#[test]
fn faithful_gets_under_duplication() {
    let cfg = two_rank(
        vec![
            op(
                1,
                OpKind::RmaGet {
                    dst: 1,
                    reply_chunks: 0,
                },
            ),
            op(
                2,
                OpKind::RmaGet {
                    dst: 1,
                    reply_chunks: 2,
                },
            ),
        ],
        2,
        0,
        1,
    );
    let report = explore(&cfg, &Muts::none(), Limits::default());
    assert_clean(&report, "gets dup");
    for rule in ["rma-get", "get-reply-fresh", "get-data-fresh"] {
        assert!(fires(&report, rule) > 0, "{rule} never exercised");
    }
}

/// An accumulate under drop + dup: the classic exactly-once stressor
/// (a duplicated accumulate that applied twice would corrupt the cell).
#[test]
fn faithful_accumulate_exactly_once() {
    let cfg = two_rank(vec![op(1, OpKind::RmaAcc { dst: 1 })], 2, 1, 1);
    let report = explore(&cfg, &Muts::none(), Limits::default());
    assert_clean(&report, "acc drop+dup");
    assert!(fires(&report, "rma-acc") > 0);
}

/// When the adversary's drop budget exceeds the retry budget, exhaustion
/// is legitimately reachable — and every such terminal shows a typed
/// failure (voided flow), never a silent stall. Runs where the drops
/// land elsewhere still succeed.
#[test]
fn legitimate_exhaustion_is_typed_not_silent() {
    let cfg = two_rank(vec![op(1, OpKind::RmaPut { dst: 1, chunks: 0 })], 1, 2, 0);
    let report = explore(&cfg, &Muts::none(), Limits::default());
    assert!(report.complete, "bound hit\n{}", report.render());
    assert!(
        report.violations.is_empty(),
        "exhaustion produced violations\n{}",
        report.render()
    );
    assert!(
        report.failed_terminals > 0,
        "no terminal with a voided/failed flow\n{}",
        report.render()
    );
    assert!(
        report.success_terminals > 0,
        "no terminal where the op still made it\n{}",
        report.render()
    );
}

/// Defense-in-depth scope of the seq window, honestly stated: for get
/// flows the origin-side op-liveness guards alone suppress every late
/// duplicate, so removing the window stays violation-free. (For rdv,
/// put and acc it does not — a post-completion duplicate re-creates
/// receiver state or re-applies; those are the mutation tests below.)
#[test]
fn window_redundant_for_get_flows_only() {
    let cfg = two_rank(
        vec![
            op(
                1,
                OpKind::RmaGet {
                    dst: 1,
                    reply_chunks: 0,
                },
            ),
            op(
                2,
                OpKind::RmaGet {
                    dst: 1,
                    reply_chunks: 2,
                },
            ),
        ],
        2,
        0,
        1,
    );
    let muts = Muts::of(&[Mutation::SkipSeqWindowAdvance]);
    let report = explore(&cfg, &muts, Limits::default());
    assert_clean(&report, "gets without seq window");
}

// ---- mutation self-validation -----------------------------------------

/// Every seeded protocol mutation must be caught by the explorer, with
/// the expected violation kind and a non-empty printed counterexample.
#[test]
fn all_mutations_are_caught_with_counterexamples() {
    let eager = |drop, dup| {
        two_rank(
            vec![op(
                1,
                OpKind::Eager {
                    dst: 1,
                    tag: 7,
                    seq: 0,
                },
            )],
            2,
            drop,
            dup,
        )
    };
    let rdv =
        |chunks, drop, dup| two_rank(vec![op(1, OpKind::Rdv { dst: 1, chunks })], 2, drop, dup);
    let cases: Vec<(&str, Muts, Cfg, &str)> = vec![
        (
            "window removed: duplicated eager delivers twice",
            Muts::of(&[Mutation::SkipSeqWindowAdvance]),
            eager(0, 1),
            "double-delivery",
        ),
        (
            "cts-stale guard dropped: duplicate CTS hits no rule",
            Muts::of(&[Mutation::SkipSeqWindowAdvance, Mutation::DropDupCtsGuard]),
            rdv(1, 0, 1),
            "unhandled-frame",
        ),
        (
            "rts dedup removed: in-flight duplicate RTS resets the assembly",
            Muts::of(&[Mutation::SkipSeqWindowAdvance, Mutation::SkipRtsDedup]),
            rdv(2, 0, 1),
            "silent-stall",
        ),
        (
            "chunk bitmap forgotten: put completes with counted-not-marked chunks",
            Muts::of(&[Mutation::ForgetChunkBitmap]),
            two_rank(vec![op(1, OpKind::RmaPut { dst: 1, chunks: 2 })], 2, 0, 0),
            "corrupt-assembly",
        ),
        (
            "exhaustion ignored: the waiter is never failed",
            Muts::of(&[Mutation::IgnoreRetriesExhausted]),
            two_rank(vec![op(1, OpKind::RmaPut { dst: 1, chunks: 0 })], 1, 2, 0),
            "silent-stall",
        ),
        (
            "timer stops re-issuing RTS: exhaustion without matching drops",
            Muts::of(&[Mutation::DontReissueRts]),
            rdv(1, 1, 0),
            "spurious-exhaustion",
        ),
        (
            "duplicates not re-acked: sender retries into exhaustion",
            Muts::of(&[Mutation::AckOnlyFresh]),
            eager(1, 0),
            "spurious-exhaustion",
        ),
        (
            "receive completes a chunk early",
            Muts::of(&[Mutation::CompleteRecvEarly]),
            rdv(2, 0, 0),
            "corrupt-assembly",
        ),
        (
            "get-chunk dedup removed: duplicate reply chunk completes with a hole",
            Muts::of(&[Mutation::SkipSeqWindowAdvance, Mutation::SkipGetChunkDedup]),
            two_rank(
                vec![op(
                    1,
                    OpKind::RmaGet {
                        dst: 1,
                        reply_chunks: 2,
                    },
                )],
                2,
                0,
                1,
            ),
            "corrupt-assembly",
        ),
    ];
    assert!(cases.len() >= 6, "self-validation needs ≥ 6 seeded bugs");
    for (what, muts, cfg, expected) in cases {
        let report = explore(&cfg, &muts, Limits::default());
        eprintln!("=== mutation: {what} ===\n{}", report.render());
        assert!(
            report.kinds().contains(expected),
            "{what}: expected a {expected} violation, found {:?}",
            report.kinds()
        );
        let cx = report
            .violations
            .iter()
            .find(|c| c.kind == expected)
            .expect("kind present implies counterexample kept");
        assert!(
            !cx.trace.is_empty(),
            "{what}: counterexample has an empty trace"
        );
    }
}

/// Deep lane (ci.sh `model`): larger configurations that exhaust much
/// bigger spaces — run in release under `PM2_MODEL_DEEP=1`.
#[test]
fn deep_faithful_suite() {
    if !deep() {
        eprintln!("PM2_MODEL_DEEP not set; skipping deep configurations");
        return;
    }
    let limits = Limits {
        max_states: 4_000_000,
    };
    // Rendezvous with three chunks under drop + dup.
    let rdv3 = two_rank(vec![op(1, OpKind::Rdv { dst: 1, chunks: 3 })], 2, 1, 1);
    let report = explore(&rdv3, &Muts::none(), limits);
    eprintln!("deep rdv3: {}", report.render());
    assert_clean(&report, "deep rdv chunks=3");
    // Chunked put + chunked get side by side, drop + dup.
    let mix = two_rank(
        vec![
            op(1, OpKind::RmaPut { dst: 1, chunks: 2 }),
            op(
                2,
                OpKind::RmaGet {
                    dst: 1,
                    reply_chunks: 2,
                },
            ),
        ],
        2,
        1,
        1,
    );
    let report = explore(&mix, &Muts::none(), limits);
    eprintln!("deep rma mix: {}", report.render());
    assert_clean(&report, "deep put+get under drop+dup");
    // Three ranks: rank 0 sends eager + rdv to different peers.
    let tri = Cfg {
        ranks: 3,
        scripts: vec![
            vec![
                op(
                    1,
                    OpKind::Eager {
                        dst: 1,
                        tag: 3,
                        seq: 0,
                    },
                ),
                op(2, OpKind::Rdv { dst: 2, chunks: 2 }),
            ],
            vec![],
            vec![],
        ],
        max_retries: 2,
        drop_budget: 1,
        dup_budget: 1,
    };
    let report = explore(&tri, &Muts::none(), limits);
    eprintln!("deep tri: {}", report.render());
    assert_clean(&report, "deep three-rank eager+rdv");
}

// ---- trace conformance ------------------------------------------------

/// The fig5-style overlap loop from the obs suite: per-round isend /
/// irecv ping-pong at the given sizes in both directions, then a closing
/// allreduce. Returns the full obs event stream.
fn run_traced(cfg: ClusterConfig, sizes: &'static [usize]) -> Vec<Event> {
    let cluster = Cluster::build(cfg);
    cluster.sim().obs().set_enabled(true);
    let comms = Comm::world(&cluster);
    let compute = SimDuration::from_micros(20);
    {
        let s = cluster.session(0).clone();
        let comm = comms[0].clone();
        cluster.spawn_on(0, "model-0", move |ctx| async move {
            for (i, len) in sizes.iter().copied().enumerate() {
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xa5; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
                let hr = s.irecv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
            }
            comm.allreduce_sum(&ctx, 1).await;
        });
    }
    {
        let s = cluster.session(1).clone();
        let comm = comms[1].clone();
        cluster.spawn_on(1, "model-1", move |ctx| async move {
            for (i, len) in sizes.iter().copied().enumerate() {
                let hr = s.irecv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let h = s
                    .isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), vec![0x5a; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
            }
            comm.allreduce_sum(&ctx, 1).await;
        });
    }
    let end = cluster.run_deadline(DEADLINE);
    assert!(end < DEADLINE, "traced run wedged");
    cluster.sim().obs().events()
}

/// The clean fig5-style eager + rendezvous trace is model-permitted,
/// and non-vacuously so: the replay fires the fresh rules of all three
/// protocols.
#[test]
fn fig5_trace_is_model_permitted() {
    let events = run_traced(
        ClusterConfig::paper_testbed(EngineKind::Pioman),
        &[8 << 10, 8 << 10, 64 << 10],
    );
    let report = check_trace(&events, &ConformCfg::default());
    eprintln!("{}", report.render());
    assert!(report.conformant(), "fig5 trace not permitted");
    assert!(report.rdvs >= 2, "both 64 KiB directions are rendezvous");
    assert!(report.eager_deliveries >= 4, "four eager rounds traced");
    for rule in ["eager-deliver", "rts-fresh", "cts-fresh", "rdv-data-fresh"] {
        let n = report.rule_fires.get(rule).copied().unwrap_or(0);
        assert!(n > 0, "{rule} never fired in the replay");
    }
}

/// A lossy (drop-only) stream across three seeds: retransmissions and
/// duplicate suppressions appear in the trace, and every one of them is
/// model-permitted under the strict drop-only discipline
/// (`dup_faults: false`).
#[test]
fn lossy_stream_trace_is_model_permitted() {
    let sizes: &'static [usize] = &[4 << 10, 48 << 10, 4 << 10, 8 << 10, 48 << 10, 4 << 10];
    let mut total_retx = 0;
    for seed in [1, 7, 42] {
        let mut fabric = FabricParams::myri10g();
        fabric.fault = FaultPlan::loss(seed, 0.05);
        let cfg = ClusterConfig {
            fabric,
            ..ClusterConfig::paper_testbed(EngineKind::Pioman)
        };
        let events = run_traced(cfg, sizes);
        let report = check_trace(&events, &ConformCfg::default());
        eprintln!("seed {seed}: {}", report.render());
        assert!(
            report.conformant(),
            "lossy trace (seed {seed}) not permitted"
        );
        total_retx += report.retransmits;
    }
    assert!(
        total_retx > 0,
        "5% loss over three seeds produced no retransmissions"
    );
}

/// The passive-target RMA exchange (put, 16 accumulates, two gets, the
/// target computing throughout) is model-permitted: every op is issued
/// once, applied exactly-once and completed exactly-once.
#[test]
fn rma_passive_trace_is_model_permitted() {
    const WIN: u64 = 3;
    let cluster = Cluster::build(ClusterConfig::paper_testbed(EngineKind::Pioman));
    cluster.sim().obs().set_enabled(true);
    {
        let rma = cluster.rma(1).clone();
        cluster.spawn_on(1, "target", move |ctx| async move {
            rma.window_create(&ctx, WIN, 16 << 10).await;
            ctx.compute(SimDuration::from_millis(3)).await;
        });
    }
    {
        let rma = cluster.rma(0).clone();
        cluster.spawn_on(0, "origin", move |ctx| async move {
            ctx.compute(SimDuration::from_micros(5)).await;
            let win = rma.window(WIN);
            win.put(&ctx, NodeId(1), 0, vec![0xb7; 4 << 10]);
            for _ in 0..16 {
                win.accumulate(&ctx, NodeId(1), 8 << 10, vec![1u8; 8]);
            }
            win.flush(&ctx).await;
            let g = win.get(&ctx, NodeId(1), 0, 4 << 10);
            win.flush(&ctx).await;
            assert_eq!(
                g.take_result().expect("get incomplete"),
                vec![0xb7; 4 << 10]
            );
        });
    }
    let end = cluster.run_deadline(DEADLINE);
    assert!(end < DEADLINE, "passive-target run wedged");
    let report = check_trace(&cluster.sim().obs().events(), &ConformCfg::default());
    eprintln!("{}", report.render());
    assert!(report.conformant(), "rma trace not permitted");
    assert!(report.rma_ops >= 18, "put + 16 accs + get all issued");
    let acks = report.rule_fires.get("rma-ack-fresh").copied().unwrap_or(0);
    assert!(acks >= 18, "every op completes through the ack rule");
}
