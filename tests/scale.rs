//! Scale tests: the DES core and matching layer at hundreds of ranks.
//!
//! These pin the two scaling properties this repo's queue work bought:
//! the calendar event queue keeps 256-rank schedules tractable and
//! deterministic, and arena matching keeps an all-to-all's unexpected
//! backlog linear in probe work (the old flat-Vec scans were quadratic
//! here — see `NmCounters::match_probes`).

use pm2_fabric::FaultPlan;
use pm2_marcel::MarcelConfig;
use pm2_mpi::{Cluster, ClusterConfig, Comm};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimTime;
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// One-socket dual-core nodes (the `scale_sweep` testbed): big clusters
/// without paying for 8 Marcel cores per rank.
fn scale_testbed(ranks: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_testbed(EngineKind::Pioman);
    cfg.nodes = ranks;
    cfg.sockets_per_node = 1;
    cfg.cores_per_socket = 2;
    cfg.fabric.fault = FaultPlan::default();
    cfg.marcel = MarcelConfig::default();
    cfg.seed = seed;
    cfg
}

/// Wedge guard: every workload here finishes in well under a virtual
/// second; five virtual minutes means livelock, not slowness.
const SCALE_DEADLINE: SimTime = SimTime::from_secs(300);

/// 256 ranks: dissemination barrier, then an eager all-to-all storm
/// (every rank sends one 32-byte message to every other rank *before*
/// posting any receive, so arrivals pile into the unexpected pool), then
/// a closing barrier. Checks the PR-4 conservation invariants and that
/// total matching work stayed linear in the message count.
#[test]
fn eager_all_to_all_storm_at_256_ranks_balances() {
    const RANKS: usize = 256;
    let cluster = Cluster::build(scale_testbed(RANKS, 42));
    let world = Comm::world(&cluster);
    let done = Rc::new(Cell::new(0u32));
    for (rank, comm) in world.into_iter().enumerate() {
        let s = cluster.session(rank).clone();
        let done = Rc::clone(&done);
        cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
            comm.barrier(&ctx).await;
            // Storm: all sends first (tag = sender rank), then receives.
            let mut handles = Vec::with_capacity(RANKS - 1);
            for off in 1..RANKS {
                let dest = (rank + off) % RANKS;
                let h = s
                    .isend(&ctx, NodeId(dest), Tag(rank as u64), vec![off as u8; 32])
                    .await;
                handles.push(h);
            }
            for off in 1..RANKS {
                let src = (rank + RANKS - off) % RANKS;
                let data = s.recv(&ctx, Some(NodeId(src)), Tag(src as u64)).await;
                assert_eq!(data.len(), 32);
                assert_eq!(data[0] as usize, off);
            }
            for h in &handles {
                s.swait_send(h, &ctx).await;
            }
            comm.barrier(&ctx).await;
            done.set(done.get() + 1);
        });
    }
    cluster
        .sim()
        .run_bounded(SCALE_DEADLINE)
        .expect("storm converges well before the deadline");
    assert_eq!(done.get(), RANKS as u32);

    // PR-4 invariants across the whole mesh: messages conserve per node,
    // frame fates balance fabric-wide.
    let (mut tx, mut rx_or_lost, mut dup) = (0u64, 0u64, 0u64);
    let (mut msgs, mut probes, mut unexpected) = (0u64, 0u64, 0u64);
    for node in 0..RANKS {
        let c = cluster.session(node).counters();
        assert_eq!(
            c.eager_msgs_tx + c.rdv_started,
            c.sends,
            "node {node}: message counters do not balance: {c:?}"
        );
        msgs += c.sends;
        probes += c.match_probes;
        unexpected += c.unexpected;
        let n = cluster.nic_counters(node, 0);
        tx += n.tx_frames;
        rx_or_lost += n.rx_frames + n.faults_dropped + n.faults_corrupted;
        dup += n.faults_duplicated;
    }
    assert_eq!(rx_or_lost, tx + dup, "frame fates do not balance");
    assert!(
        unexpected > 1000,
        "storm should flood the unexpected pool (got {unexpected} of {msgs})"
    );
    // Linearity guard: every message triggers O(1) lookups (arrival-side
    // posted probe, receive-side pool probe) of O(1) amortized records
    // each. The pre-arena scans made this quadratic in the per-node
    // backlog (~255 here), which would blow far past this bound.
    assert!(
        probes < 16 * msgs,
        "matching probe work {probes} for {msgs} messages is not O(N)"
    );
}

/// Reverse-order drain of a deep unexpected backlog: one sender parks
/// 500 tagged messages, the receiver then claims them newest-first, so
/// every lookup's match sits at the *end* of the arrival order. The old
/// flat-Vec scan examined the whole backlog per recv (~N²/2 ≈ 125 000
/// entries here); the arena pool's (source, tag) index answers each in
/// O(1), which the probe counter pins.
#[test]
fn reverse_drain_of_unexpected_backlog_stays_linear() {
    const N: u64 = 500;
    let cluster = Cluster::build(scale_testbed(2, 42));
    let world = Comm::world(&cluster);
    let done = Rc::new(Cell::new(0u32));
    for (rank, comm) in world.into_iter().enumerate() {
        let s = cluster.session(rank).clone();
        let done = Rc::clone(&done);
        cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
            comm.barrier(&ctx).await;
            if rank == 0 {
                let mut handles = Vec::new();
                for k in 0..N {
                    handles.push(s.isend(&ctx, NodeId(1), Tag(k), vec![k as u8; 8]).await);
                }
                for h in &handles {
                    s.swait_send(h, &ctx).await;
                }
            } else {
                // Let the whole storm land unexpected before draining.
                ctx.sleep(pm2_sim::SimDuration::from_millis(50)).await;
                for k in (0..N).rev() {
                    let data = s.recv(&ctx, Some(NodeId(0)), Tag(k)).await;
                    assert_eq!(data[0], k as u8);
                }
            }
            comm.barrier(&ctx).await;
            done.set(done.get() + 1);
        });
    }
    cluster
        .sim()
        .run_bounded(SCALE_DEADLINE)
        .expect("drain converges well before the deadline");
    assert_eq!(done.get(), 2);
    let recv_side = cluster.session(1).counters();
    assert!(
        recv_side.unexpected >= N,
        "backlog never parked: {} unexpected",
        recv_side.unexpected
    );
    let probes: u64 = (0..2)
        .map(|n| cluster.session(n).counters().match_probes)
        .sum();
    let msgs: u64 = (0..2).map(|n| cluster.session(n).counters().sends).sum();
    assert!(
        probes < 16 * msgs,
        "reverse drain did {probes} probe work for {msgs} messages — \
         the unexpected lookup is scanning the backlog again"
    );
}

/// 256 ranks: the barrier + neighbour-ring schedule is bit-for-bit
/// deterministic — two clusters with the same seed reach the same end
/// time after the same number of events.
#[test]
fn barrier_ring_at_256_ranks_is_deterministic() {
    fn run_once(seed: u64) -> (u64, u64) {
        const RANKS: usize = 256;
        let cluster = Cluster::build(scale_testbed(RANKS, seed));
        let world = Comm::world(&cluster);
        for (rank, comm) in world.into_iter().enumerate() {
            cluster.spawn_on(rank, format!("rank{rank}"), move |ctx| async move {
                let n = comm.size();
                comm.barrier(&ctx).await;
                let right = (rank + 1) % n;
                let left = (rank + n - 1) % n;
                for it in 0..2u64 {
                    let tag = Tag(1000 + it);
                    let h = comm.isend(&ctx, right, tag, vec![it as u8; 64]).await;
                    let got = comm.recv(&ctx, Some(left), tag).await;
                    assert_eq!(got.len(), 64);
                    comm.wait_send(&h, &ctx).await;
                }
                comm.barrier(&ctx).await;
            });
        }
        let end = cluster
            .sim()
            .run_bounded(SCALE_DEADLINE)
            .expect("ring converges well before the deadline");
        (end.as_nanos(), cluster.sim().executed_events())
    }
    let (end_a, events_a) = run_once(7);
    let (end_b, events_b) = run_once(7);
    assert_eq!(end_a, end_b, "same seed must reach the same end time");
    assert_eq!(events_a, events_b, "same seed must execute the same work");
    assert!(end_a > 0 && events_a > 0);
}
