//! Differential scheduling-policy suite.
//!
//! The pluggable-scheduler refactor must be invisible under the default
//! policy and *comparable* under the alternatives:
//!
//! * the default `hier` policy reproduces the pre-refactor goldens
//!   bit-for-bit (the same numbers the committed `tests/baselines/`
//!   files encode);
//! * every policy is deterministic: the same config replays to the same
//!   virtual-time results;
//! * every policy completes the paper's fig. 5 overlap loop and the
//!   fig. 7/8 stencil, and survives the fault matrix (`PM2_FAULT_SEED`,
//!   same knob as `tests/faults.rs`);
//! * the comm-aware policy measurably improves overlap over the FIFO
//!   baseline on a loaded core — the whole point of boosting threads
//!   whose requests are near completion.

use pm2_fabric::{FabricParams, FaultPlan};
use pm2_mpi::workloads::{run_overlap, run_stencil, OverlapParams, StencilParams};
use pm2_mpi::{Cluster, ClusterConfig, SchedPolicyKind};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::stats::OnlineStats;
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Every selectable policy, by its canonical name.
const POLICIES: [&str; 4] = ["hier", "fifo", "vruntime", "comm"];

/// Wedge guard, matching the workloads' own deadline.
const DEADLINE: SimTime = SimTime::from_secs(60);

/// The fig. 5 point the goldens were captured at (8 kB, 20 µs compute).
fn fig5_point() -> OverlapParams {
    OverlapParams {
        msg_len: 8 << 10,
        compute: SimDuration::from_micros(20),
        iters: 10,
        warmup: 2,
    }
}

fn testbed(policy: &str) -> ClusterConfig {
    ClusterConfig::paper_testbed(EngineKind::Pioman).with_sched_policy(policy)
}

/// The default policy must reproduce the pre-refactor scheduler exactly:
/// these constants were captured on the monolithic `sched.rs` before the
/// trait extraction, with the same configs the committed baselines use.
#[test]
fn default_policy_reproduces_pre_refactor_goldens() {
    let overlap = run_overlap(testbed("hier"), &fig5_point());
    assert_eq!(
        format!("{:.6}", overlap.half_round_us.mean()),
        "20.300000",
        "default-policy overlap drifted from the pre-refactor golden"
    );
    let stencil = run_stencil(testbed("hier"), &StencilParams::four_threads());
    assert_eq!(
        format!("{:.3}", stencil.total_us),
        "421.728",
        "default-policy stencil drifted from the pre-refactor golden"
    );
}

#[test]
fn policy_selection_is_visible_on_the_cluster() {
    for name in POLICIES {
        let cluster = Cluster::build(testbed(name));
        for node in 0..cluster.ranks() {
            assert_eq!(cluster.marcel(node).policy_name(), name);
        }
    }
    // Canonical names round-trip through the registry.
    for kind in SchedPolicyKind::all() {
        assert_eq!(SchedPolicyKind::from_name(kind.name()), Some(kind));
    }
    assert_eq!(SchedPolicyKind::from_name("no-such-policy"), None);
}

/// Same config ⇒ same virtual-time results, for every policy. The
/// policies only use ordered containers and simulation state, so a rerun
/// replays the exact event sequence.
#[test]
fn every_policy_is_deterministic() {
    for name in POLICIES {
        let p = fig5_point();
        let a = run_overlap(testbed(name), &p);
        let b = run_overlap(testbed(name), &p);
        assert_eq!(
            a.half_round_us.mean().to_bits(),
            b.half_round_us.mean().to_bits(),
            "{name}: overlap replay diverged"
        );
        let sp = StencilParams::four_threads();
        let sa = run_stencil(testbed(name), &sp);
        let sb = run_stencil(testbed(name), &sp);
        assert_eq!(
            sa.total_us.to_bits(),
            sb.total_us.to_bits(),
            "{name}: stencil replay diverged"
        );
    }
}

/// Every policy finishes the paper's workloads: all measured iterations
/// complete (the deadline in the workload drivers never fires) and both
/// traffic kinds flow in the stencil.
#[test]
fn all_policies_complete_the_paper_workloads() {
    for name in POLICIES {
        let p = fig5_point();
        let overlap = run_overlap(testbed(name), &p);
        assert_eq!(
            overlap.half_round_us.count(),
            p.iters as u64,
            "{name}: overlap iterations lost"
        );
        let mean = overlap.half_round_us.mean();
        assert!(
            (20.0..60.0).contains(&mean),
            "{name}: implausible fig5 half-round {mean}µs"
        );
        let stencil = run_stencil(testbed(name), &StencilParams::four_threads());
        assert!(stencil.total_us > 0.0, "{name}: stencil never ran");
        let c0 = &stencil.counters[0];
        assert!(c0.shm_msgs > 0, "{name}: no intra-node traffic");
        assert!(c0.eager_msgs_tx > 0, "{name}: no inter-node traffic");
    }
}

/// Seed of the fault scenarios; `ci.sh` runs the matrix over 1 / 7 / 42,
/// exactly like `tests/faults.rs`.
fn fault_seed() -> u64 {
    std::env::var("PM2_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Liveness under a lossy fabric must not depend on the scheduling
/// policy: stream mixed eager + rendezvous messages through a dropping /
/// duplicating / corrupting window and require every byte delivered.
#[test]
fn all_policies_survive_fault_seeds() {
    let seed = fault_seed();
    for name in POLICIES {
        let mut fabric = FabricParams::myri10g();
        fabric.fault = FaultPlan {
            seed,
            drop_rate: 0.08,
            dup_rate: 0.05,
            corrupt_rate: 0.04,
            window: Some((SimTime::ZERO, SimTime::from_millis(2))),
            ..FaultPlan::default()
        };
        let cfg = ClusterConfig {
            fabric,
            ..testbed(name)
        };
        let lens = [512usize, 2048, 64 << 10, 512, 2048, 512];
        let cluster = Cluster::build(cfg);
        let delivered = Rc::new(Cell::new(0usize));
        {
            let s = cluster.session(0).clone();
            cluster.spawn_on(0, "tx", move |ctx| async move {
                for (i, len) in lens.iter().enumerate() {
                    let body: Vec<u8> = (0..*len).map(|j| (i as u8) ^ (j as u8)).collect();
                    s.send(&ctx, NodeId(1), Tag(i as u64), body).await;
                }
            });
        }
        {
            let s = cluster.session(1).clone();
            let delivered = Rc::clone(&delivered);
            cluster.spawn_on(1, "rx", move |ctx| async move {
                for (i, len) in lens.iter().enumerate() {
                    let data = s.recv(&ctx, Some(NodeId(0)), Tag(i as u64)).await;
                    assert_eq!(data.len(), *len, "message {i} truncated");
                    assert!(
                        data.iter()
                            .enumerate()
                            .all(|(j, &b)| b == (i as u8) ^ (j as u8)),
                        "message {i} corrupted past the reliability layer"
                    );
                    delivered.set(delivered.get() + 1);
                }
            });
        }
        let end = cluster.run_deadline(DEADLINE);
        assert!(end < DEADLINE, "{name} seed {seed}: run wedged");
        assert_eq!(
            delivered.get(),
            lens.len(),
            "{name} seed {seed}: messages lost"
        );
    }
}

/// Fig. 5 overlap loop with the communicating thread *sharing its node
/// with compute load*: background threads keep every core busy, so the
/// policy decides how quickly the woken communicating thread gets a core
/// back. The compute slice is shorter than the communication, so `swait`
/// genuinely blocks each iteration and the wakeup-to-dispatch delay lands
/// on the measured path. Returns the mean half-round time in µs.
fn loaded_overlap_mean(policy: &str) -> f64 {
    let cfg = ClusterConfig {
        sockets_per_node: 1,
        cores_per_socket: 2,
        ..testbed(policy)
    };
    let p = OverlapParams {
        compute: SimDuration::from_micros(2),
        ..fig5_point()
    };
    let cluster = Cluster::build(cfg);
    let stats = Rc::new(RefCell::new(OnlineStats::new()));
    let total = p.iters + p.warmup;
    let (len, compute, warmup) = (p.msg_len, p.compute, p.warmup);
    // Enough background work to keep both node-0 cores contended for the
    // whole measurement window (~0.5 ms of virtual time).
    for b in 0..3 {
        cluster.spawn_on(0, format!("bg-{b}"), move |ctx| async move {
            for _ in 0..400 {
                ctx.compute(SimDuration::from_micros(2)).await;
                ctx.yield_now().await;
            }
        });
    }
    {
        let s = cluster.session(0).clone();
        let stats = Rc::clone(&stats);
        cluster.spawn_on(0, "overlap-0", move |ctx| async move {
            for i in 0..total {
                let t1 = ctx.marcel().sim().now();
                let h = s
                    .isend(&ctx, NodeId(1), Tag(2 * i as u64), vec![0xa5; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
                let hr = s.irecv(&ctx, Some(NodeId(1)), Tag(2 * i as u64 + 1)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let t2 = ctx.marcel().sim().now();
                if i >= warmup {
                    stats
                        .borrow_mut()
                        .record(t2.saturating_since(t1).as_micros_f64() / 2.0);
                }
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        cluster.spawn_on(1, "overlap-1", move |ctx| async move {
            for i in 0..total {
                let hr = s.irecv(&ctx, Some(NodeId(0)), Tag(2 * i as u64)).await;
                ctx.compute(compute).await;
                let _ = s.swait_recv(&hr, &ctx).await;
                let h = s
                    .isend(&ctx, NodeId(0), Tag(2 * i as u64 + 1), vec![0x5a; len])
                    .await;
                ctx.compute(compute).await;
                s.swait_send(&h, &ctx).await;
            }
        });
    }
    let end = cluster.run_deadline(DEADLINE);
    assert!(end < DEADLINE, "{policy}: loaded overlap wedged");
    let stats = Rc::try_unwrap(stats).expect("sole owner").into_inner();
    assert_eq!(stats.count(), p.iters as u64);
    stats.mean()
}

/// The acceptance point of the comm-aware policy: on a loaded node it
/// must beat the FIFO baseline, which ignores wakeup urgency and parks
/// the freshly-completed communicating thread behind the compute queue.
#[test]
fn comm_aware_improves_loaded_overlap_vs_fifo() {
    let fifo = loaded_overlap_mean("fifo");
    let comm = loaded_overlap_mean("comm");
    let hier = loaded_overlap_mean("hier");
    eprintln!("loaded fig5 half-round: fifo {fifo:.3}µs, comm {comm:.3}µs, hier {hier:.3}µs");
    assert!(
        comm < fifo,
        "comm-aware ({comm:.3}µs) should beat FIFO ({fifo:.3}µs) under load"
    );
    // The boost must not regress the default policy's overlap either.
    assert!(
        comm <= hier + 1.0,
        "comm-aware ({comm:.3}µs) far behind hier ({hier:.3}µs)"
    );
}

/// The locality mix exposed through `SchedStats` partitions dispatches,
/// under any policy.
#[test]
fn stats_locality_mix_partitions_dispatches() {
    for name in POLICIES {
        let cluster = Cluster::build(testbed(name));
        for node in 0..2 {
            let peer = NodeId(1 - node);
            let s = cluster.session(node).clone();
            cluster.spawn_on(node, "pp", move |ctx| async move {
                for i in 0..4u64 {
                    if ctx.marcel().node() == NodeId(0) {
                        s.send(&ctx, peer, Tag(2 * i), vec![0; 1 << 10]).await;
                        let _ = s.recv(&ctx, Some(peer), Tag(2 * i + 1)).await;
                    } else {
                        let _ = s.recv(&ctx, Some(peer), Tag(2 * i)).await;
                        s.send(&ctx, peer, Tag(2 * i + 1), vec![0; 1 << 10]).await;
                    }
                }
            });
        }
        cluster.run();
        for node in 0..2 {
            let st = cluster.marcel(node).stats();
            assert!(st.dispatches > 0, "{name} node {node}: nothing dispatched");
            assert_eq!(
                st.pop_core + st.pop_local_socket + st.pop_node + st.pop_steal,
                st.dispatches,
                "{name} node {node}: locality mix does not partition \
                 dispatches: {st:?}"
            );
        }
    }
}
