//! Deterministic fault-injection scenarios for the reliability layer.
//!
//! Every scenario seeds its own [`FaultPlan`], so a failure replays
//! identically from the seed (see EXPERIMENTS.md). Targeted faults name
//! frame indices in the fabric-global transmission order; for a reliable
//! two-node run the first frames are:
//!
//! * eager: `0` = `Rel{Eager}` data, `1` = its ack;
//! * rendezvous (single rail, single chunk): `0` = `Rel{Rts}`, `1` = ack,
//!   `2` = `Rel{Cts}`, then the data chunk and the remaining acks in
//!   `3..6` (exact interleave depends on submission timing, which is why
//!   the rendezvous test drops each of the first six frames in turn).
//!
//! Engine caveat exercised throughout: the sequential engine only makes
//! progress inside library calls, so a retransmission queued by a timer
//! is not submitted until the application re-enters the library. The
//! scenarios model that with a late fault-free "flush" ping-pong; without
//! it a sender that already returned from `swait` would let the retry
//! budget run out (which is itself bounded, so nothing wedges).

use pm2_fabric::{FabricParams, FaultPlan, NicCounters, StallWindow};
use pm2_mpi::{Cluster, ClusterConfig};
use pm2_newmad::{EngineKind, NmCounters, Tag};
use pm2_sim::{SimDuration, SimTime};
use pm2_topo::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// Wedge guard: the slowest scenario (an abandoned retry ladder under
/// the sequential engine) ends around 100 ms of virtual time.
const FAULT_DEADLINE: SimTime = SimTime::from_secs(60);

const BOTH_ENGINES: [EngineKind; 2] = [EngineKind::Pioman, EngineKind::Sequential];

/// Seed of the rate-based scenarios; `ci.sh` runs the matrix over several
/// published values.
fn fault_seed() -> u64 {
    std::env::var("PM2_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn faulty(engine: EngineKind, fault: FaultPlan) -> ClusterConfig {
    let mut fabric = FabricParams::myri10g();
    fabric.fault = fault;
    ClusterConfig {
        fabric,
        ..ClusterConfig::paper_testbed(engine)
    }
}

fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i as u8).wrapping_mul(41) ^ (j as u8))
        .collect()
}

struct Outcome {
    end: SimTime,
    rel_enabled: bool,
    c0: NmCounters,
    c1: NmCounters,
    nic0: NicCounters,
    nic1: NicCounters,
}

/// Node 0 streams `lens` messages to node 1 (each byte-verified on
/// arrival). With `flush`, both sides re-enter the library after that
/// long a pause for one fault-free ping-pong, giving the sequential
/// engine its chance to submit pending retransmissions.
fn run_scenario(cfg: ClusterConfig, lens: &[usize], flush: Option<SimDuration>) -> Outcome {
    let engine = cfg.engine;
    let cluster = Cluster::build(cfg);
    let delivered = Rc::new(Cell::new(0usize));
    {
        let s = cluster.session(0).clone();
        let lens = lens.to_vec();
        cluster.spawn_on(0, "tx", move |ctx| async move {
            for (i, len) in lens.iter().enumerate() {
                s.send(&ctx, NodeId(1), Tag(i as u64), payload(i, *len))
                    .await;
            }
            if let Some(pause) = flush {
                ctx.compute(pause).await;
                s.send(&ctx, NodeId(1), Tag(9000), payload(90, 64)).await;
                let pong = s.recv(&ctx, Some(NodeId(1)), Tag(9001)).await;
                assert_eq!(pong, payload(91, 64));
            }
        });
    }
    {
        let s = cluster.session(1).clone();
        let lens = lens.to_vec();
        let delivered = Rc::clone(&delivered);
        cluster.spawn_on(1, "rx", move |ctx| async move {
            for (i, len) in lens.iter().enumerate() {
                let data = s.recv(&ctx, Some(NodeId(0)), Tag(i as u64)).await;
                assert_eq!(data, payload(i, *len), "message {i} corrupted");
                delivered.set(delivered.get() + 1);
            }
            if flush.is_some() {
                let ping = s.recv(&ctx, Some(NodeId(0)), Tag(9000)).await;
                assert_eq!(ping, payload(90, 64));
                s.send(&ctx, NodeId(0), Tag(9001), payload(91, 64)).await;
            }
        });
    }
    let end = cluster.run_deadline(FAULT_DEADLINE);
    assert_eq!(delivered.get(), lens.len(), "messages lost ({engine:?})");
    for node in 0..2 {
        let st = cluster.session(node).debug_state();
        if engine == EngineKind::Pioman {
            // The background engine drains everything once the app quits.
            assert!(st.is_clean(), "node {node} leaked protocol state: {st:?}");
        } else {
            // The sequential engine cannot send after the app leaves the
            // library (final acks may strand, bounded by the retry
            // budget), but no *request* may leak.
            assert_eq!(
                (st.posted, st.unexpected, st.rdv_sends, st.rdv_recvs),
                (0, 0, 0, 0),
                "node {node} leaked a request: {st:?}"
            );
        }
    }
    Outcome {
        end,
        rel_enabled: cluster.session(0).reliability_enabled(),
        c0: cluster.session(0).counters(),
        c1: cluster.session(1).counters(),
        nic0: cluster.nic_counters(0, 0),
        nic1: cluster.nic_counters(1, 0),
    }
}

/// An empty plan keeps the reliability layer off: no acks, no retransmit
/// state, no fault-path counters — the happy path is untouched.
#[test]
fn zero_fault_plan_keeps_reliability_off() {
    for engine in BOTH_ENGINES {
        let out = run_scenario(
            faulty(engine, FaultPlan::default()),
            &[1024, 64 << 10],
            None,
        );
        assert!(!out.rel_enabled, "{engine:?}");
        for c in [&out.c0, &out.c1] {
            assert_eq!(c.acks_sent, 0);
            assert_eq!(c.retransmits, 0);
            assert_eq!(c.dup_suppressed, 0);
        }
        for n in [&out.nic0, &out.nic1] {
            assert_eq!(
                n.faults_dropped + n.faults_duplicated + n.faults_delayed + n.faults_corrupted,
                0
            );
        }
    }
}

/// An active plan (even one that never fires) switches the layer on:
/// every envelope is acknowledged, nothing is retransmitted.
#[test]
fn active_plan_enables_acks_without_retransmits() {
    for engine in BOTH_ENGINES {
        let out = run_scenario(
            faulty(
                engine,
                FaultPlan {
                    drop_frames: vec![9999],
                    ..FaultPlan::default()
                },
            ),
            &[1024],
            // Below the first retransmit timeout: the sequential sender
            // must re-enter the library to *see* the ack before its timer
            // fires, or it would retransmit spuriously.
            Some(SimDuration::from_micros(50)),
        );
        assert!(out.rel_enabled, "{engine:?}");
        assert!(out.c1.acks_sent >= 1, "{engine:?}: {:?}", out.c1);
        assert_eq!(out.c0.retransmits, 0, "{engine:?}");
    }
}

/// Protocol step 1, eager data lost on the wire: the ack timeout
/// retransmits it and the message arrives exactly once.
#[test]
fn eager_data_drop_is_retransmitted() {
    for engine in BOTH_ENGINES {
        let out = run_scenario(
            faulty(
                engine,
                FaultPlan {
                    drop_frames: vec![0],
                    ..FaultPlan::default()
                },
            ),
            &[4096],
            Some(SimDuration::from_millis(2)),
        );
        assert!(out.c0.retransmits >= 1, "{engine:?}: {:?}", out.c0);
        assert_eq!(out.nic1.faults_dropped, 1, "{engine:?}");
    }
}

/// Protocol step 2, the ack lost instead: the sender retransmits, the
/// receiver recognizes the duplicate and only re-acks.
#[test]
fn eager_ack_drop_is_absorbed_by_duplicate_suppression() {
    for engine in BOTH_ENGINES {
        let out = run_scenario(
            faulty(
                engine,
                FaultPlan {
                    drop_frames: vec![1],
                    ..FaultPlan::default()
                },
            ),
            &[4096],
            Some(SimDuration::from_millis(2)),
        );
        assert!(out.c0.retransmits >= 1, "{engine:?}: {:?}", out.c0);
        assert!(out.c1.dup_suppressed >= 1, "{engine:?}: {:?}", out.c1);
        assert_eq!(out.nic0.faults_dropped, 1, "{engine:?}");
    }
}

/// Rendezvous: dropping each of the six handshake frames in turn (RTS,
/// CTS, the data chunk, and their acks) still yields exactly-once
/// delivery within the deadline, and losing the RTS itself re-issues it.
#[test]
fn rendezvous_survives_each_handshake_frame_drop() {
    for engine in BOTH_ENGINES {
        for k in 0..6u64 {
            let out = run_scenario(
                faulty(
                    engine,
                    FaultPlan {
                        drop_frames: vec![k],
                        ..FaultPlan::default()
                    },
                ),
                &[64 << 10],
                Some(SimDuration::from_millis(3)),
            );
            assert!(
                out.c0.retransmits + out.c1.retransmits >= 1,
                "{engine:?} frame {k}: no retransmission recorded"
            );
            assert_eq!(out.nic0.faults_dropped + out.nic1.faults_dropped, 1);
            if k == 0 {
                assert!(
                    out.c0.rts_reissues >= 1,
                    "{engine:?}: lost RTS was not re-issued"
                );
            }
        }
    }
}

/// Duplicated handshake frames (the CTS included) are suppressed by the
/// sequence window: the transfer runs exactly once and nothing is
/// retransmitted.
#[test]
fn duplicated_cts_does_not_restart_the_transfer() {
    for engine in BOTH_ENGINES {
        let out = run_scenario(
            faulty(
                engine,
                FaultPlan {
                    dup_frames: vec![0, 1, 2, 3, 4, 5],
                    ..FaultPlan::default()
                },
            ),
            &[64 << 10],
            Some(SimDuration::from_millis(3)),
        );
        assert!(
            out.c0.dup_suppressed + out.c1.dup_suppressed >= 1,
            "{engine:?}: no duplicate reached the sequence window"
        );
        assert_eq!(out.c0.rdv_started, 1, "{engine:?}: transfer restarted");
        assert_eq!(out.c1.rdv_completed, 1, "{engine:?}");
        assert!(out.nic0.faults_duplicated + out.nic1.faults_duplicated >= 1);
    }
}

/// Reorder-delay and corruption faults: a delayed frame is overtaken but
/// still delivered (in-order to the app), a corrupted frame is discarded
/// by the CRC check and behaves like a loss.
#[test]
fn delayed_and_corrupted_frames_recover() {
    for engine in BOTH_ENGINES {
        let out = run_scenario(
            faulty(
                engine,
                FaultPlan {
                    delay_frames: vec![0],
                    corrupt_frames: vec![2],
                    delay: SimDuration::from_micros(40),
                    ..FaultPlan::default()
                },
            ),
            &[512, 512, 512],
            Some(SimDuration::from_millis(2)),
        );
        assert_eq!(out.nic1.faults_delayed, 1, "{engine:?}");
        assert!(
            out.nic0.faults_corrupted + out.nic1.faults_corrupted >= 1,
            "{engine:?}"
        );
        assert!(out.c0.retransmits >= 1, "{engine:?}: {:?}", out.c0);
    }
}

/// Conservation of frames and messages under randomized fault injection,
/// for any `PM2_FAULT_SEED` (CI runs the published seed matrix) and both
/// engines:
///
/// * **frame balance**, per directed link: every frame the sender's NIC
///   transmits meets exactly one fate at the destination — delivered
///   (`rx_frames`), dropped on the wire (`faults_dropped`) or discarded
///   by the CRC check (`faults_corrupted`) — while duplication injects
///   one extra delivery per duplicated frame, so
///   `rx + dropped + corrupted == tx + duplicated`;
/// * **message balance**, per node: retransmissions re-enter the
///   submission path as raw wire packs and must never be double-counted
///   as application traffic, so `eager_msgs_tx + rdv_started == sends`
///   exactly, no matter how many frames the fault plan destroyed.
#[test]
fn frame_and_message_counters_balance_under_faults() {
    for engine in BOTH_ENGINES {
        let plan = FaultPlan {
            seed: fault_seed(),
            drop_rate: 0.08,
            dup_rate: 0.05,
            corrupt_rate: 0.04,
            window: Some((SimTime::ZERO, SimTime::from_millis(2))),
            ..FaultPlan::default()
        };
        // Mixed sizes: mostly eager, one rendezvous transfer, so both
        // protocol paths contribute frames to the balance.
        let lens = [512usize, 2048, 64 << 10, 512, 512, 2048, 512, 512];
        let out = run_scenario(
            faulty(engine, plan),
            &lens,
            Some(SimDuration::from_millis(5)),
        );
        let seed = fault_seed();
        let injected = out.nic0.faults_dropped
            + out.nic0.faults_duplicated
            + out.nic0.faults_corrupted
            + out.nic1.faults_dropped
            + out.nic1.faults_duplicated
            + out.nic1.faults_corrupted;
        assert!(
            injected >= 1,
            "{engine:?} seed {seed}: fault plan never fired"
        );
        for (dir, tx, rx) in [
            ("0->1", &out.nic0, &out.nic1),
            ("1->0", &out.nic1, &out.nic0),
        ] {
            assert_eq!(
                rx.rx_frames + rx.faults_dropped + rx.faults_corrupted,
                tx.tx_frames + rx.faults_duplicated,
                "{engine:?} seed {seed} link {dir}: frame fates do not \
                 balance (tx {:?} / rx {:?})",
                tx,
                rx
            );
        }
        for (node, c) in [(0, &out.c0), (1, &out.c1)] {
            assert_eq!(
                c.eager_msgs_tx + c.rdv_started,
                c.sends,
                "{engine:?} seed {seed} node {node}: retransmissions \
                 leaked into message counters: {c:?}"
            );
        }
    }
}

fn burst_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_rate: 0.4,
        window: Some((SimTime::from_micros(5), SimTime::from_micros(400))),
        ..FaultPlan::default()
    }
}

/// Burst loss: 40% of the frames sent inside a 400 µs window vanish;
/// every message still arrives exactly once.
#[test]
fn burst_loss_window_recovers() {
    for engine in BOTH_ENGINES {
        let lens = [4096usize; 10];
        let out = run_scenario(
            faulty(engine, burst_plan(fault_seed())),
            &lens,
            Some(SimDuration::from_millis(5)),
        );
        assert!(
            out.nic0.faults_dropped + out.nic1.faults_dropped >= 1,
            "{engine:?} seed {}: burst never fired",
            fault_seed()
        );
        assert!(out.c0.retransmits >= 1, "{engine:?}: {:?}", out.c0);
    }
}

/// Same seed ⇒ same trace: the burst scenario replays to the identical
/// final virtual time and identical counters.
#[test]
fn fault_runs_replay_identically_per_seed() {
    for engine in BOTH_ENGINES {
        let run = || {
            run_scenario(
                faulty(engine, burst_plan(fault_seed())),
                &[4096; 10],
                Some(SimDuration::from_millis(5)),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.end, b.end, "{engine:?}");
        assert_eq!(a.c0, b.c0, "{engine:?}");
        assert_eq!(a.c1, b.c1, "{engine:?}");
        assert_eq!(a.nic1, b.nic1, "{engine:?}");
    }
}

/// A rail going dark mid-rendezvous trips PIOMAN's driver quarantine:
/// the receiver's NIC driver is reported degraded while the rail stalls,
/// polling backs off, and the driver re-arms once frames flow again —
/// with the transfer still delivered exactly once.
#[test]
fn rail_stall_mid_transfer_quarantines_then_recovers() {
    let mut cfg = faulty(
        EngineKind::Pioman,
        FaultPlan {
            stalls: vec![StallWindow {
                node: Some(1),
                from: SimTime::from_micros(20),
                until: SimTime::from_micros(600),
            }],
            ..FaultPlan::default()
        },
    );
    cfg.pioman.quarantine_after = Some(200);
    cfg.pioman.quarantine_backoff = SimDuration::from_micros(20);
    let cluster = Cluster::build(cfg);
    let got = Rc::new(Cell::new(false));
    let len = 256 << 10;
    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "tx", move |ctx| async move {
            s.send(&ctx, NodeId(1), Tag(1), payload(1, len)).await;
        });
    }
    {
        let s = cluster.session(1).clone();
        let got = Rc::clone(&got);
        cluster.spawn_on(1, "rx", move |ctx| async move {
            let data = s.recv(&ctx, Some(NodeId(0)), Tag(1)).await;
            assert_eq!(data, payload(1, len));
            got.set(true);
        });
    }
    // Sample degraded-mode reporting while the rail is dark.
    let degraded_hits = Rc::new(Cell::new(0u32));
    for t in [150u64, 250, 350, 450, 550] {
        let pio = cluster.pioman(1).expect("pioman engine").clone();
        let hits = Rc::clone(&degraded_hits);
        cluster
            .sim()
            .schedule_at(SimTime::from_micros(t), move |_| {
                if !pio.degraded_drivers().is_empty() {
                    hits.set(hits.get() + 1);
                }
            });
    }
    cluster.run_deadline(FAULT_DEADLINE);
    assert!(got.get(), "transfer never completed");
    assert!(
        degraded_hits.get() >= 1,
        "stalled rail was never reported degraded"
    );
    let pio = cluster.pioman(1).expect("pioman engine");
    assert!(
        pio.degraded_drivers().is_empty(),
        "driver still quarantined after recovery"
    );
    let quarantines: u64 = (0..2)
        .map(|i| pio.driver_health(pioman::DriverId(i)).quarantines)
        .sum();
    assert!(quarantines >= 1, "no quarantine window was ever opened");
    assert!(cluster.nic_counters(1, 0).faults_stalled >= 1);
    assert!(cluster.session(1).debug_state().is_clean());
}

/// Long soak: a 1% uniformly lossy fabric under ~10⁶ mixed
/// eager/rendezvous messages in both directions still delivers
/// everything exactly once, under both engines. Tune the volume with
/// `PM2_SOAK_MSGS` (the CI acceptance run uses 100 000).
#[test]
#[ignore = "long soak; run with --release -- --ignored, volume via PM2_SOAK_MSGS"]
fn soak_mixed_traffic_under_one_percent_loss() {
    let total: usize = std::env::var("PM2_SOAK_MSGS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    for engine in BOTH_ENGINES {
        soak_one(engine, total);
    }
}

/// Deterministic pseudo-random size mix crossing the eager/rendezvous
/// boundary (mostly small, a rendezvous transfer every 64 messages).
fn soak_len(i: usize) -> usize {
    let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33;
    if i % 64 == 63 {
        48 << 10
    } else {
        64 + (h % 2000) as usize
    }
}

fn soak_one(engine: EngineKind, total: usize) {
    const BATCH: usize = 250;
    let per_dir = total / 2;
    let rounds = per_dir.div_ceil(BATCH);
    let cluster = Cluster::build(faulty(engine, FaultPlan::loss(fault_seed(), 0.01)));
    let delivered = Rc::new(Cell::new(0usize));
    let finished = Rc::new(Cell::new(0usize));
    for node in 0..2usize {
        let s = cluster.session(node).clone();
        let delivered = Rc::clone(&delivered);
        let finished = Rc::clone(&finished);
        cluster.spawn_on(node, format!("soak{node}"), move |ctx| async move {
            let peer = NodeId(1 - node);
            for r in 0..rounds {
                let base = r * BATCH;
                let n = BATCH.min(per_dir - base);
                let mut handles = Vec::with_capacity(n);
                for i in 0..n {
                    let uid = base + i;
                    let tag = Tag(((node as u64) << 40) | uid as u64);
                    handles.push(s.isend(&ctx, peer, tag, payload(uid, soak_len(uid))).await);
                }
                for i in 0..n {
                    let uid = base + i;
                    let tag = Tag((((1 - node) as u64) << 40) | uid as u64);
                    let data = s.recv(&ctx, Some(peer), tag).await;
                    assert_eq!(data, payload(uid, soak_len(uid)), "soak message {uid}");
                    delivered.set(delivered.get() + 1);
                }
                for h in &handles {
                    s.swait_send(h, &ctx).await;
                }
            }
            finished.set(finished.get() + 1);
        });
    }
    // The sequential engine needs a pump per node: without background
    // progression, retransmissions queued by timers are only submitted
    // from inside the library. The pump drains submissions until both
    // workers are done, then for a grace period covering a full retry
    // ladder (~70 ms).
    if engine == EngineKind::Sequential {
        for node in 0..2usize {
            let s = cluster.session(node).clone();
            let finished = Rc::clone(&finished);
            cluster.spawn_on(node, format!("pump{node}"), move |ctx| async move {
                while finished.get() < 2 {
                    s.flush_sends(&ctx).await;
                    ctx.compute(SimDuration::from_micros(25)).await;
                }
                for _ in 0..4000 {
                    s.flush_sends(&ctx).await;
                    ctx.compute(SimDuration::from_micros(25)).await;
                }
            });
        }
    }
    cluster.run_deadline(SimTime::from_secs(3600));
    assert_eq!(delivered.get(), per_dir * 2, "soak lost messages");
    let (c0, c1) = (cluster.session(0).counters(), cluster.session(1).counters());
    assert!(
        c0.retransmits + c1.retransmits >= 1,
        "1% loss produced no retransmissions?"
    );
    for node in 0..2 {
        let st = cluster.session(node).debug_state();
        assert_eq!(
            (st.posted, st.unexpected, st.rdv_sends, st.rdv_recvs),
            (0, 0, 0, 0),
            "soak leaked a request on node {node}: {st:?}"
        );
    }
    eprintln!(
        "soak {engine:?}: {} msgs, end {}, retransmits {}, dups {}, exhausted {}",
        per_dir * 2,
        cluster.sim().now(),
        c0.retransmits + c1.retransmits,
        c0.dup_suppressed + c1.dup_suppressed,
        c0.retries_exhausted + c1.retries_exhausted,
    );
}

/// Retry-budget exhaustion surfaces as a *typed* completion error on the
/// waiting request — never a hang (PR-10 reliability pin). Under a 100%
/// loss plan the RTS can never arrive: after the full retry ladder the
/// reliability layer abandons the envelope, fails the send request with
/// `ReqError::RetriesExhausted`, and `swait_send` returns well before
/// the deadline on both engines.
#[test]
fn retry_exhaustion_surfaces_typed_error() {
    for engine in BOTH_ENGINES {
        let cluster = Cluster::build(faulty(engine, FaultPlan::loss(fault_seed(), 1.0)));
        let exhausted = Rc::new(Cell::new(false));
        {
            let s = cluster.session(0).clone();
            let exhausted = Rc::clone(&exhausted);
            cluster.spawn_on(0, "doomed-sender", move |ctx| async move {
                // Rendezvous-sized: the send request only completes via
                // the handshake, so its failure is observable.
                let h = s.isend(&ctx, NodeId(1), Tag(9), vec![0xd0; 64 << 10]).await;
                s.swait_send(&h, &ctx).await;
                assert!(h.is_complete(), "swait returned an incomplete request");
                assert_eq!(
                    h.req().error(),
                    Some(pioman::ReqError::RetriesExhausted),
                    "exhaustion did not surface as a typed error"
                );
                exhausted.set(true);
            });
        }
        let end = cluster.run_deadline(FAULT_DEADLINE);
        assert!(
            end < FAULT_DEADLINE,
            "exhaustion hung instead of failing ({engine:?})"
        );
        assert!(
            exhausted.get(),
            "sender never reached the verdict ({engine:?})"
        );
        let c0 = cluster.session(0).counters();
        assert!(
            c0.retries_exhausted >= 1,
            "exhaustion counter never ticked ({engine:?})"
        );
    }
}
