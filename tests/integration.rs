//! Cross-crate integration tests: the paper's result *shapes* asserted
//! end-to-end on the full stack (topology → fabric → Marcel → PIOMAN →
//! NewMadeleine → mini-MPI).

use pm2_mpi::workloads::{run_overlap, run_stencil, OverlapParams, StencilParams};
use pm2_mpi::{Cluster, ClusterConfig, Comm, StrategyKind};
use pm2_newmad::{EngineKind, Tag};
use pm2_sim::SimDuration;
use pm2_topo::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

fn overlap(engine: EngineKind, size: usize, compute_us: u64) -> f64 {
    run_overlap(
        ClusterConfig::paper_testbed(engine),
        &OverlapParams {
            msg_len: size,
            compute: SimDuration::from_micros(compute_us),
            iters: 12,
            warmup: 3,
        },
    )
    .half_round_us
    .mean()
}

/// Figure 5's shape: for eager sizes, the sequential engine pays
/// communication *plus* computation while PIOMAN pays the max of the two
/// (within a small tasklet overhead).
#[test]
fn fig5_shape_holds() {
    for size in [1 << 10, 4 << 10, 16 << 10] {
        let reference = overlap(EngineKind::Pioman, size, 0);
        let no_offload = overlap(EngineKind::Sequential, size, 20);
        let offload = overlap(EngineKind::Pioman, size, 20);
        let sum = reference + 20.0;
        let max = reference.max(20.0);
        assert!(
            (no_offload - sum).abs() < 3.0,
            "{size}B: no-offload {no_offload:.1} should be ≈ sum {sum:.1}"
        );
        assert!(
            offload >= max - 0.5 && offload <= max + 3.0,
            "{size}B: offload {offload:.1} should be ≈ max {max:.1}"
        );
        assert!(no_offload > offload, "{size}B: offloading must win");
    }
}

/// Figure 6's shape: rendezvous progression overlaps the handshake and
/// the bulk transfer with the computation; the crossover sits where the
/// transfer time reaches the computation time (~128K).
#[test]
fn fig6_shape_holds() {
    // Below the crossover, PIOMAN is compute-bound.
    let prog_small = overlap(EngineKind::Pioman, 64 << 10, 100);
    assert!(
        (prog_small - 100.0).abs() < 6.0,
        "64K rdv-prog {prog_small:.1} should sit near the 100µs compute"
    );
    // Above it, both engines are comm-bound but sequential still pays
    // the full sum.
    let reference = overlap(EngineKind::Pioman, 256 << 10, 0);
    let no_prog = overlap(EngineKind::Sequential, 256 << 10, 100);
    let prog = overlap(EngineKind::Pioman, 256 << 10, 100);
    assert!(
        (no_prog - (reference + 100.0)).abs() < 12.0,
        "no-prog {no_prog:.1} vs sum {:.1}",
        reference + 100.0
    );
    assert!(
        (prog - reference).abs() < 8.0,
        "rdv-prog {prog:.1} should track the reference {reference:.1}"
    );
    assert!(no_prog > prog + 50.0, "progression must win clearly");
}

/// Table 1's shape: the meta-application speeds up by roughly the
/// paper's 13–14% under offloading, in both thread configurations, and
/// the 16-thread run takes substantially longer than the 4-thread one.
#[test]
fn table1_shape_holds() {
    let mut seq = Vec::new();
    let mut pio = Vec::new();
    for p in [
        StencilParams::four_threads(),
        StencilParams::sixteen_threads(),
    ] {
        seq.push(run_stencil(ClusterConfig::paper_testbed(EngineKind::Sequential), &p).total_us);
        pio.push(run_stencil(ClusterConfig::paper_testbed(EngineKind::Pioman), &p).total_us);
    }
    for i in 0..2 {
        let speedup = (seq[i] - pio[i]) / seq[i] * 100.0;
        assert!(
            (5.0..30.0).contains(&speedup),
            "config {i}: speedup {speedup:.1}% outside the plausible band"
        );
    }
    assert!(
        seq[1] > seq[0] * 1.8,
        "16 threads ({:.0}µs) should cost much more than 4 ({:.0}µs)",
        seq[1],
        seq[0]
    );
}

/// A 4-node all-to-all with mixed sizes arrives intact under both
/// engines (multi-node matching, wildcard receives, eager + rendezvous).
#[test]
fn four_node_all_to_all() {
    for engine in [EngineKind::Pioman, EngineKind::Sequential] {
        let cluster = Cluster::build(ClusterConfig {
            nodes: 4,
            ..ClusterConfig::paper_testbed(engine)
        });
        let received = Rc::new(RefCell::new(vec![0usize; 4]));
        for me in 0..4usize {
            let s = cluster.session(me).clone();
            let received = Rc::clone(&received);
            cluster.spawn_on(me, format!("rank{me}"), move |ctx| async move {
                let mut handles = Vec::new();
                for peer in 0..4 {
                    if peer == me {
                        continue;
                    }
                    let len = 1 << (10 + ((me + peer) % 7)); // 1K..64K
                    let tag = Tag((me * 4 + peer) as u64);
                    handles.push(s.isend(&ctx, NodeId(peer), tag, vec![me as u8; len]).await);
                }
                ctx.compute(SimDuration::from_micros(30)).await;
                for h in &handles {
                    s.swait_send(h, &ctx).await;
                }
                for peer in 0..4usize {
                    if peer == me {
                        continue;
                    }
                    let tag = Tag((peer * 4 + me) as u64);
                    let data = s.recv(&ctx, Some(NodeId(peer)), tag).await;
                    assert!(data.iter().all(|&b| b == peer as u8));
                    received.borrow_mut()[me] += 1;
                }
            });
        }
        cluster.run();
        assert_eq!(*received.borrow(), vec![3, 3, 3, 3], "engine {engine:?}");
    }
}

/// Collectives compose with point-to-point traffic across barriers.
#[test]
fn collectives_and_p2p_compose() {
    let cluster = Cluster::build(ClusterConfig {
        nodes: 3,
        ..ClusterConfig::default()
    });
    let comms = Comm::world(&cluster);
    let sums = Rc::new(RefCell::new(Vec::new()));
    for (rank, comm) in comms.into_iter().enumerate() {
        let sums = Rc::clone(&sums);
        cluster.spawn_on(rank, format!("r{rank}"), move |ctx| async move {
            for round in 0..3u64 {
                let s = comm
                    .allreduce_sum(&ctx, (comm.rank() as u64 + 1) * (round + 1))
                    .await;
                sums.borrow_mut().push(s);
                comm.barrier(&ctx).await;
                // Ring exchange after each barrier.
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                let h = comm
                    .isend(&ctx, next, Tag(round), vec![comm.rank() as u8; 2048])
                    .await;
                let data = comm.recv(&ctx, Some(prev), Tag(round)).await;
                assert_eq!(data[0] as usize, prev);
                comm.wait_send(&h, &ctx).await;
                comm.barrier(&ctx).await;
            }
        });
    }
    cluster.run();
    let sums = sums.borrow();
    assert_eq!(sums.len(), 9);
    for round in 0..3u64 {
        let expected = 6 * (round + 1); // (1+2+3) * (round+1)
        assert_eq!(
            sums.iter().filter(|&&s| s == expected).count(),
            3,
            "round {round}"
        );
    }
}

/// The aggregation strategy preserves correctness on the full stack and
/// reduces wire frames for bursty traffic.
#[test]
fn aggregation_end_to_end() {
    let cluster = Cluster::build(ClusterConfig {
        strategy: StrategyKind::Aggreg,
        ..ClusterConfig::default()
    });
    const N: usize = 20;
    {
        let s = cluster.session(0).clone();
        cluster.spawn_on(0, "tx", move |ctx| async move {
            let mut hs = Vec::new();
            for i in 0..N {
                hs.push(
                    s.isend(&ctx, NodeId(1), Tag(i as u64), vec![i as u8; 256])
                        .await,
                );
            }
            ctx.compute(SimDuration::from_micros(40)).await;
            for h in &hs {
                s.swait_send(h, &ctx).await;
            }
        });
    }
    let ok = Rc::new(RefCell::new(0usize));
    {
        let s = cluster.session(1).clone();
        let ok = Rc::clone(&ok);
        cluster.spawn_on(1, "rx", move |ctx| async move {
            for i in 0..N {
                let v = s.recv(&ctx, Some(NodeId(0)), Tag(i as u64)).await;
                assert_eq!(v, vec![i as u8; 256]);
                *ok.borrow_mut() += 1;
            }
        });
    }
    cluster.run();
    assert_eq!(*ok.borrow(), N);
    let c = cluster.session(0).counters();
    assert!(
        c.eager_frames_tx < N as u64 / 2,
        "burst should aggregate: {} frames for {N} messages",
        c.eager_frames_tx
    );
}

/// Determinism across the whole stack: identical seeds give identical
/// virtual end times; different seeds with jitter give different ones.
#[test]
fn full_stack_determinism() {
    fn run(seed: u64, jitter: f64) -> u64 {
        let mut fabric = pm2_fabric::FabricParams::myri10g();
        fabric.jitter_frac = jitter;
        let cluster = Cluster::build(ClusterConfig {
            seed,
            fabric,
            ..ClusterConfig::default()
        });
        {
            let s = cluster.session(0).clone();
            cluster.spawn_on(0, "tx", move |ctx| async move {
                for i in 0..10 {
                    let h = s.isend(&ctx, NodeId(1), Tag(i), vec![1; 4096]).await;
                    s.swait_send(&h, &ctx).await;
                }
            });
        }
        let done = Rc::new(RefCell::new(0u64));
        {
            let s = cluster.session(1).clone();
            let done = Rc::clone(&done);
            cluster.spawn_on(1, "rx", move |ctx| async move {
                for i in 0..10 {
                    let _ = s.recv(&ctx, Some(NodeId(0)), Tag(i)).await;
                }
                *done.borrow_mut() = ctx.marcel().sim().now().as_nanos();
            });
        }
        cluster.run();
        let t = *done.borrow();
        t
    }
    assert_eq!(run(7, 0.3), run(7, 0.3));
    assert_ne!(
        run(7, 0.3),
        run(8, 0.3),
        "jitter should differ across seeds"
    );
}
