#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, tests.
# Everything runs offline against the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== fault-scenario matrix (seeds 1 7 42)"
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test faults
done

echo "== collective differential matrix (seeds 1 7 42)"
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test coll
done

echo "== collective sweep smoke (BENCH_coll.json schema)"
PM2_COLL_SMOKE=1 ./target/release/coll_sweep > /tmp/coll_smoke.json
for key in allreduce_flat allreduce_auto allreduce_ring allreduce_rd \
           bcast_flat bcast_tree bcast_auto; do
  grep -q "\"$key\":" /tmp/coll_smoke.json \
    || { echo "BENCH_coll smoke output misses series \"$key\""; exit 1; }
done

echo "== zero-fault baseline guard (byte-identical figures)"
# Doubles as the obs-disabled guard: pm2-obs is off by default, so any
# observability cost leaking into the disabled path shows up here as a
# baseline deviation.
for b in fig5 fig6 table1 bandwidth; do
  ./target/release/$b | diff -u "tests/baselines/$b.txt" - \
    || { echo "$b deviates from tests/baselines/$b.txt"; exit 1; }
done

echo "== obs timeline dump (pm2-obs-dump/v1 schema)"
# The dump carries virtual timestamps, so it is schema-checked (like
# BENCH_coll.json) rather than diffed against a golden file; obs_dump
# itself exits nonzero if any reconstructed timeline is out of causal
# order.
./target/release/obs_dump > /tmp/obs_dump.json
for key in pm2-obs-dump/v1 pm2-obs-timeline/v1 pm2-obs-metrics/v1 \
           reqs rdvs rts_tx cts_rx dma_chunks submit_site latency_ns \
           faults_dropped groups; do
  grep -q "\"$key\"" /tmp/obs_dump.json \
    || { echo "obs_dump output misses key \"$key\""; exit 1; }
done

# Long soak (~10^6 messages at 1% loss, both engines); run locally with
# PM2_SOAK=1 ./ci.sh, tune the volume via PM2_SOAK_MSGS.
if [ "${PM2_SOAK:-0}" = "1" ]; then
  echo "== 1%-loss soak"
  cargo test --release -p pm2-bench --test faults -- --ignored --nocapture
fi

echo "CI OK"
