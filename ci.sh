#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, tests.
# Everything runs offline against the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "CI OK"
