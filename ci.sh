#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, tests.
# Everything runs offline against the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== pm2-lint source gate (raw-sync + protocol-panic rules)"
# The former grep hygiene gate, promoted to a scanner with testable
# rules: raw std::sync primitives outside crates/sync (escape:
# `// sync-allow: <reason>`) and panic-capable calls in the pm2-newmad
# protocol paths (escape: `// lint-allow: <reason>`).
./target/release/pm2_lint

echo "== cargo test"
cargo test -q

echo "== protocol model-checker lane (explorer + conformance + mutations)"
# tests/model.rs: exhaustive exploration of the wire-protocol transition
# tables (zero violations on the faithful tables, all nine seeded
# mutations caught with counterexamples) plus trace conformance of real
# runs; PM2_MODEL_DEEP adds the larger configurations.
PM2_MODEL_DEEP=1 cargo test -q --release -p pm2-bench --test model

echo "== fault-scenario matrix (seeds 1 7 42)"
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test faults
done

echo "== stress soak under the fault matrix (seeds 1 7 42)"
# tests/stress.rs: the random-traffic soak re-runs on a 2% lossy fabric
# per seed, asserting exactly-once delivery and frame/message balance.
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test stress
done

echo "== collective differential matrix (seeds 1 7 42)"
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test coll
done

echo "== scheduling-policy differential matrix (seeds 1 7 42)"
# tests/sched.rs: default-policy goldens, per-policy determinism, and
# liveness of every policy under the same fault seeds as the fault lane.
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test sched
done

echo "== one-sided RMA matrix (seeds 1 7 42)"
# tests/rma.rs: passive-target put/get/accumulate in both progression
# modes (stolen idle cores and the dedicated progress thread), with the
# lossy lane asserting exactly-once accumulate across the seed matrix.
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test rma
done

echo "== scale suite (seeds 1 7 42, 256 ranks)"
# tests/scale.rs: 256-rank eager all-to-all storm with the PR-4 balance
# invariants plus the matching-probe linearity guard, and a 256-rank
# determinism check on the barrier + neighbour-ring schedule.
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test scale
done

echo "== service-scenario suite (seeds 1 7 42, all four policies)"
# tests/scenario.rs: report determinism, generator law bounds, nominal
# specs pass their SLO under every policy, the overload probe fails its
# SLO, and comm-signal brackets balance under thousands of streams.
for seed in 1 7 42; do
  PM2_FAULT_SEED=$seed cargo test -q --release -p pm2-bench --test scenario
done

echo "== scenario sweep smoke (BENCH_scenarios.json schema)"
PM2_SCENARIO_SMOKE=1 ./target/release/scenario_sweep > /tmp/scenario_smoke.json
for key in pm2-scenarios/v1 svc_uniform_poisson svc_incast_pareto svc_heavy_mix \
           stencil_halo train_allreduce rma_incast_mix svc_overload_incast \
           hier fifo vruntime comm p50_us p99_us p999_us slo_pass; do
  grep -q "\"$key\"" /tmp/scenario_smoke.json \
    || { echo "BENCH_scenarios smoke output misses key \"$key\""; exit 1; }
done
# The harness must be able to fail: the overload probe's verdict is
# checked here too, so a rubber-stamping suite breaks CI.
grep -q '"slo_pass": false' /tmp/scenario_smoke.json \
  || { echo "scenario smoke: overload probe did not fail its SLO"; exit 1; }

echo "== scheduling sweep smoke (BENCH_sched.json schema)"
PM2_SCHED_SMOKE=1 ./target/release/sched_sweep > /tmp/sched_smoke.json
for key in pm2-sched-sweep/v1 hier fifo vruntime comm \
           fig5 fig5_loaded_us locality fig6; do
  grep -q "\"$key\"" /tmp/sched_smoke.json \
    || { echo "BENCH_sched smoke output misses key \"$key\""; exit 1; }
done

echo "== collective sweep smoke (BENCH_coll.json schema)"
PM2_COLL_SMOKE=1 ./target/release/coll_sweep > /tmp/coll_smoke.json
for key in allreduce_flat allreduce_auto allreduce_ring allreduce_rd \
           bcast_flat bcast_tree bcast_auto; do
  grep -q "\"$key\":" /tmp/coll_smoke.json \
    || { echo "BENCH_coll smoke output misses series \"$key\""; exit 1; }
done

echo "== scale sweep smoke (BENCH_scale.json schema)"
PM2_SCALE_SMOKE=1 ./target/release/scale_sweep > /tmp/scale_smoke.json
for key in pm2-scale/v1 ranks ring_iters events msgs events_per_sec \
           wall_ms virt_ms wall_per_virt end_ns; do
  grep -q "\"$key\"" /tmp/scale_smoke.json \
    || { echo "BENCH_scale smoke output misses key \"$key\""; exit 1; }
done
# Throughput must be non-degenerate and monotone: a zero events/sec
# means the sweep measured nothing (wedged cluster or broken clock), and
# per-event cost can only grow with rank count — the 16-rank point
# sustains ~2x the 256-rank throughput, so this survives smoke noise.
grep -q '"events_per_sec": 0[,}]' /tmp/scale_smoke.json \
  && { echo "scale smoke: degenerate zero events/sec point"; exit 1; }
rates=$(grep -o '"events_per_sec": [0-9]*' /tmp/scale_smoke.json | awk '{print $2}')
prev=""
for r in $rates; do
  if [ -n "$prev" ] && [ "$r" -ge "$prev" ]; then
    echo "scale smoke: events/sec not monotone decreasing with ranks ($rates)"
    exit 1
  fi
  prev=$r
done

echo "== zero-fault baseline guard (byte-identical figures)"
# Doubles as the obs-disabled guard: pm2-obs is off by default, so any
# observability cost leaking into the disabled path shows up here as a
# baseline deviation.
for b in fig5 fig6 table1 bandwidth; do
  ./target/release/$b | diff -u "tests/baselines/$b.txt" - \
    || { echo "$b deviates from tests/baselines/$b.txt"; exit 1; }
done

echo "== obs timeline dump (pm2-obs-dump/v1 schema)"
# The dump carries virtual timestamps, so it is schema-checked (like
# BENCH_coll.json) rather than diffed against a golden file; obs_dump
# itself exits nonzero if any reconstructed timeline is out of causal
# order.
./target/release/obs_dump > /tmp/obs_dump.json
for key in pm2-obs-dump/v1 pm2-obs-timeline/v1 pm2-obs-metrics/v1 \
           reqs rdvs rts_tx cts_rx dma_chunks submit_site latency_ns \
           faults_dropped groups; do
  grep -q "\"$key\"" /tmp/obs_dump.json \
    || { echo "obs_dump output misses key \"$key\""; exit 1; }
done

# Long soak (~10^6 messages at 1% loss, both engines); run locally with
# PM2_SOAK=1 ./ci.sh, tune the volume via PM2_SOAK_MSGS.
if [ "${PM2_SOAK:-0}" = "1" ]; then
  echo "== 1%-loss soak"
  cargo test --release -p pm2-bench --test faults -- --ignored --nocapture
fi

# Bounded model checking of the pm2-sync primitives with the in-tree loom
# replacement (~1 min); run locally with PM2_LOOM=1 ./ci.sh. The bound is
# CHESS-style preemption counting; 3 is exhaustive enough for every suite
# invariant while keeping the lane offline-friendly and fast.
if [ "${PM2_LOOM:-0}" = "1" ]; then
  echo "== loom model-checking lane (pm2-sync, bounded interleaving search)"
  RUSTFLAGS="--cfg loom" LOOM_MAX_PREEMPTIONS="${LOOM_MAX_PREEMPTIONS:-3}" \
    cargo test -p pm2-sync --release --test loom
fi

# Miri lane (undefined-behaviour interpreter) for the pm2-sync natives;
# opt-in with PM2_MIRI=1. Needs the nightly `miri` component, which this
# offline container cannot install — the lane skips LOUDLY rather than
# silently passing.
if [ "${PM2_MIRI:-0}" = "1" ]; then
  echo "== Miri lane (pm2-sync)"
  if cargo +nightly miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-strict-provenance" cargo +nightly miri test -p pm2-sync --lib
  else
    echo "SKIPPED: Miri unavailable (needs 'rustup +nightly component add miri'," \
         "not installable offline). Run this lane on a networked host."
  fi
fi

# ThreadSanitizer lane for the pm2-sync native stress tests; opt-in with
# PM2_TSAN=1. Needs nightly. Std itself is only instrumented under
# -Zbuild-std (needs the rust-src component, not installable offline), so
# without it the libtest harness's own std internals are suppressed via
# tsan-suppressions.txt; pm2-sync code is always fully checked.
if [ "${PM2_TSAN:-0}" = "1" ]; then
  echo "== ThreadSanitizer lane (pm2-sync)"
  if rustup run nightly rustc --version >/dev/null 2>&1; then
    host="$(rustc -vV | sed -n 's/^host: //p')"
    if rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src.*(installed)'; then
      RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -p pm2-sync -Zbuild-std --target "$host" --test native_stress
    else
      # --test-threads=1 keeps the (uninstrumented) libtest harness off
      # TSan's radar; the stress tests spawn their own checked threads.
      TSAN_OPTIONS="suppressions=$(pwd)/tsan-suppressions.txt" \
        RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
        cargo +nightly test -p pm2-sync --target "$host" --test native_stress \
        -- --test-threads=1
    fi
  else
    echo "SKIPPED: nightly toolchain unavailable (not installable offline)." \
         "Run this lane on a networked host with 'rustup toolchain install nightly'."
  fi
fi

echo "CI OK"
